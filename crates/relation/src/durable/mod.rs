//! Durable live relations: a write-ahead log plus segment spill over
//! [`ChunkedRelation`], so appended rows survive crashes and restarts.
//!
//! PR 5's chunked store made appends cheap but volatile: every appended
//! row lives in memory only, and a restart falls back to the base file.
//! [`DurableRelation`] closes that gap with the classic WAL +
//! checkpoint pair:
//!
//! * every append is first written to a checksummed **write-ahead log**
//!   frame ([`wal`]) — with [`WalSync::Always`], fsync'd before the
//!   append returns, so an acknowledged row can never be lost to a
//!   crash;
//! * when the in-memory tail reaches [`DurabilityConfig::spill_rows`],
//!   a **checkpoint** spills the tail to a `seg-NNNNNN.rel` file
//!   ([`spill`]), records it in the `MANIFEST`, and truncates the WAL —
//!   so memory and log stay bounded no matter how long the process
//!   appends;
//! * [`DurableRelation::open`] ([`recovery`]) rebuilds the relation
//!   from base + segments + WAL tail, tolerating a torn final frame,
//!   and reports the generation to resume at.
//!
//! A data directory holds:
//!
//! ```text
//! <dir>/MANIFEST          checkpoint record (text, atomically replaced)
//! <dir>/wal.log           append frames since the last checkpoint
//! <dir>/seg-000000.rel    spilled segments ("OPTR" format, same as the
//! <dir>/seg-000001.rel     base relation file)
//! ```
//!
//! The base relation file itself lives wherever the caller keeps it and
//! is never modified.
//!
//! Crash-consistency ordering at a checkpoint: segment tmp + fsync +
//! rename, then manifest tmp + fsync + rename, then WAL truncate. A
//! crash between the last two replays WAL frames already covered by the
//! manifest — [`wal`]'s replay skips those by row number, so recovery
//! is idempotent.

use crate::chunked::{AppendRows, ChunkedRelation, RowFrame};
use crate::columnar::ColumnarScan;
use crate::encoding::RecordLayout;
use crate::error::Result;
use crate::file::FileRelation;
use crate::memory::Relation;
use crate::scan::{RandomAccess, RowVisitor, TupleScan};
use crate::schema::{NumAttr, Schema};
use optrules_obs::{Histogram, HistogramSnapshot, Timer};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

pub(crate) mod recovery;
pub(crate) mod spill;
pub(crate) mod wal;

pub use recovery::Recovery;

use spill::{write_manifest, BaseStack, Manifest};
use wal::WalWriter;

/// When the write-ahead log is fsync'd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// Fsync before every append acknowledgment: an acked row survives
    /// even power loss. The safe (and slow) default.
    #[default]
    Always,
    /// Write WAL frames to the OS page cache without fsync: acked rows
    /// survive a process kill (`kill -9`) but not a power failure. The
    /// log is synced at every checkpoint and on graceful shutdown.
    Batch,
    /// No write-ahead log at all: rows become durable only at a
    /// checkpoint (spill or explicit flush). A crash loses the
    /// un-spilled tail.
    Off,
}

/// Tuning for a [`DurableRelation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Checkpoint (spill the in-memory tail to a segment file and
    /// truncate the WAL) once the tail reaches this many rows.
    pub spill_rows: u64,
    /// WAL fsync policy.
    pub sync: WalSync,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            spill_rows: 65_536,
            sync: WalSync::Always,
        }
    }
}

/// A point-in-time view of a [`DurableRelation`]'s durability state —
/// the `durability` object of the server's `{"cmd":"stats"}` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Current size of the write-ahead log in bytes (header included).
    pub wal_bytes: u64,
    /// Rows not yet covered by a checkpoint (in memory + WAL only).
    pub unflushed_rows: u64,
    /// Segment files spilled so far in this data directory.
    pub segments_spilled: u64,
    /// Generation recorded by the most recent checkpoint.
    pub last_checkpoint_generation: u64,
}

/// Latency histograms for the durability hot path — the `durability`
/// object of the server's `{"cmd":"metrics"}` reply.
#[derive(Debug, Clone)]
pub struct DurabilityMetrics {
    /// Latency of one WAL append (including the fsync under
    /// [`WalSync::Always`]) — the cost every acked durable append pays.
    pub wal_fsync: HistogramSnapshot,
    /// Latency of one spill checkpoint (segment write + manifest +
    /// WAL truncate).
    pub checkpoint: HistogramSnapshot,
}

/// Optional durability hooks a relation store may provide. The default
/// implementations report "not durable" and make flush a no-op, so
/// engine and server code can be generic over both plain in-memory
/// stores and [`DurableRelation`] without specialization.
pub trait Durability: Sized {
    /// Durability counters, or `None` for stores with no backing log.
    fn durability_stats(&self) -> Option<DurabilityStats> {
        None
    }

    /// Durability latency histograms, or `None` for stores with no
    /// backing log.
    fn durability_metrics(&self) -> Option<DurabilityMetrics> {
        None
    }

    /// Forces a checkpoint, returning the checkpointed version to swap
    /// in — or `None` when there is nothing to do (no durability, or
    /// already checkpointed). Must only be called on the **latest**
    /// version, with appends excluded (the engine holds its writer
    /// mutex).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the spill or manifest write.
    fn checkpointed(&self) -> Result<Option<Self>> {
        Ok(None)
    }
}

impl Durability for Relation {}
impl Durability for FileRelation {}
impl<B> Durability for ChunkedRelation<B> {}

impl<T: Durability> Durability for &T {
    fn durability_stats(&self) -> Option<DurabilityStats> {
        (**self).durability_stats()
    }
    fn durability_metrics(&self) -> Option<DurabilityMetrics> {
        (**self).durability_metrics()
    }
    // `checkpointed` keeps the no-op default: a shared reference cannot
    // produce a new owned version to swap in.
}

/// State shared by every version of one durable relation: the WAL
/// writer and the checkpoint bookkeeping. One lock serializes all
/// durability mutation; the engine's writer mutex already serializes
/// appends, so this lock is uncontended in practice.
#[derive(Debug)]
struct StoreState {
    /// `None` when [`WalSync::Off`].
    wal: Option<WalWriter>,
    /// Rows durable in base + segments.
    durable_rows: u64,
    /// Generation of the latest version (mirrors the engine's counter:
    /// +1 per non-empty append).
    generation: u64,
    last_checkpoint_generation: u64,
    /// Spilled segment file names, oldest first.
    segments: Vec<String>,
    next_segment_id: u64,
    /// Rows in the original base file (recorded in the manifest).
    base_rows: u64,
}

#[derive(Debug)]
struct DurableStore {
    dir: PathBuf,
    schema: Schema,
    layout: RecordLayout,
    config: DurabilityConfig,
    state: Mutex<StoreState>,
    /// WAL-append latency (fsync included under [`WalSync::Always`]).
    wal_fsync: Histogram,
    /// Spill-checkpoint latency (segment + manifest + WAL truncate).
    checkpoint: Histogram,
}

/// A crash-safe live relation: a [`ChunkedRelation`] over stacked file
/// segments, with every append logged to a WAL before it is applied and
/// the in-memory tail periodically spilled back to disk. See the
/// [module docs](self) for the file layout and guarantees.
///
/// Scans and random access behave exactly like the equivalent flat
/// relation; versions returned by [`AppendRows::with_rows`] are
/// copy-on-write snapshots just like `ChunkedRelation`'s. Appends must
/// go through the latest version only (the engine's writer mutex
/// guarantees this).
#[derive(Debug)]
pub struct DurableRelation {
    inner: ChunkedRelation<BaseStack>,
    store: Arc<DurableStore>,
}

// Manual impl: `Arc` clones regardless of the store's contents.
impl Clone for DurableRelation {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            store: Arc::clone(&self.store),
        }
    }
}

impl DurableRelation {
    /// Opens (or initializes) the data directory `dir` over the base
    /// relation file at `base`, replaying any WAL tail. See
    /// [`Recovery`] for what is reported back.
    ///
    /// # Errors
    ///
    /// Fails when the base or a segment file is missing or malformed,
    /// when the manifest disagrees with the files on disk, or on I/O
    /// errors.
    pub fn open(
        base: impl AsRef<std::path::Path>,
        dir: impl AsRef<std::path::Path>,
        config: DurabilityConfig,
    ) -> Result<Recovery> {
        recovery::recover(base.as_ref(), dir.as_ref(), config)
    }

    /// Rows appended since the last checkpoint (the in-memory tail).
    pub fn tail_rows(&self) -> u64 {
        self.inner.appended_rows()
    }

    fn from_parts(inner: ChunkedRelation<BaseStack>, store: Arc<DurableStore>) -> Self {
        Self { inner, store }
    }

    /// Spills this version's tail (if any), updates the manifest, and
    /// truncates the WAL. The caller holds the state lock and `self`
    /// must be the latest version.
    fn checkpoint_locked(&self, state: &mut StoreState) -> Result<Self> {
        let timer = Timer::start();
        let len = self.inner.len();
        let tail = self.inner.appended_rows();
        let next = if tail > 0 {
            let name = format!("seg-{:06}.rel", state.next_segment_id);
            let part = spill::spill_segment(
                &self.store.dir,
                &name,
                &self.store.schema,
                &self.inner,
                len - tail..len,
            )?;
            state.next_segment_id += 1;
            state.segments.push(name);
            state.durable_rows = len;
            let stack = self.inner.base().with_part(part);
            Self::from_parts(ChunkedRelation::new(stack), Arc::clone(&self.store))
        } else {
            self.clone()
        };
        state.last_checkpoint_generation = state.generation;
        write_manifest(
            &self.store.dir,
            &Manifest {
                base_rows: state.base_rows,
                numeric_count: self.store.layout.numeric_count,
                boolean_count: self.store.layout.boolean_count,
                generation: state.generation,
                durable_rows: state.durable_rows,
                segments: state.segments.clone(),
            },
        )?;
        if let Some(wal) = state.wal.as_mut() {
            wal.truncate()?;
        }
        timer.stop(&self.store.checkpoint);
        Ok(next)
    }

    /// Checkpoints unconditionally (used by recovery's
    /// [`WalSync::Off`] path).
    pub(crate) fn force_checkpoint(&self) -> Result<Self> {
        let mut state = self.store.state.lock().expect("durable state poisoned");
        self.checkpoint_locked(&mut state)
    }
}

impl TupleScan for DurableRelation {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn for_each_row_in(&self, range: Range<u64>, f: RowVisitor<'_>) -> Result<()> {
        self.inner.for_each_row_in(range, f)
    }

    fn as_columnar(&self) -> Option<&dyn ColumnarScan> {
        self.inner.as_columnar()
    }
}

impl RandomAccess for DurableRelation {
    fn numeric_at(&self, attr: NumAttr, row: u64) -> Result<f64> {
        self.inner.numeric_at(attr, row)
    }
}

impl AppendRows for DurableRelation {
    /// Logs `rows` to the WAL (fsync'd first under [`WalSync::Always`]),
    /// then produces the next in-memory version; reaching the spill
    /// budget checkpoints before returning. WAL frame and relation
    /// version fail atomically together on a schema mismatch: the frame
    /// is encoded (arity-checked) in full before any byte is written.
    fn with_rows(&self, rows: &[RowFrame]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(self.clone());
        }
        let mut state = self.store.state.lock().expect("durable state poisoned");
        if let Some(wal) = state.wal.as_mut() {
            let timer = Timer::start();
            wal.append(
                self.inner.len(),
                rows,
                self.store.config.sync == WalSync::Always,
            )?;
            timer.stop(&self.store.wal_fsync);
        }
        let inner = self.inner.with_rows(rows)?;
        state.generation += 1;
        let next = Self::from_parts(inner, Arc::clone(&self.store));
        if next.inner.appended_rows() >= self.store.config.spill_rows {
            return next.checkpoint_locked(&mut state);
        }
        Ok(next)
    }
}

impl Durability for DurableRelation {
    fn durability_stats(&self) -> Option<DurabilityStats> {
        let state = self.store.state.lock().expect("durable state poisoned");
        Some(DurabilityStats {
            wal_bytes: state.wal.as_ref().map_or(0, |w| w.bytes()),
            // Saturating: an *old pinned version* may predate the last
            // checkpoint's durable_rows.
            unflushed_rows: self.inner.len().saturating_sub(state.durable_rows),
            segments_spilled: state.segments.len() as u64,
            last_checkpoint_generation: state.last_checkpoint_generation,
        })
    }

    fn durability_metrics(&self) -> Option<DurabilityMetrics> {
        Some(DurabilityMetrics {
            wal_fsync: self.store.wal_fsync.snapshot(),
            checkpoint: self.store.checkpoint.snapshot(),
        })
    }

    fn checkpointed(&self) -> Result<Option<Self>> {
        let mut state = self.store.state.lock().expect("durable state poisoned");
        if self.inner.appended_rows() == 0 && state.last_checkpoint_generation == state.generation {
            return Ok(None);
        }
        self.checkpoint_locked(&mut state).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileRelationWriter;
    use std::path::{Path, PathBuf};

    fn schema() -> Schema {
        Schema::builder()
            .numeric("X")
            .numeric("Y")
            .boolean("B")
            .build()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "optrules-durable-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_file(dir: &Path, rows: u64) -> PathBuf {
        let path = dir.join("base.rel");
        let mut w = FileRelationWriter::create(&path, schema()).unwrap();
        for i in 0..rows {
            w.push_row(&[i as f64, (i * 2) as f64], &[i % 3 == 0])
                .unwrap();
        }
        w.finish().unwrap();
        path
    }

    fn frame(tag: f64, rows: usize) -> Vec<RowFrame> {
        (0..rows)
            .map(|i| RowFrame {
                numeric: vec![tag, i as f64],
                boolean: vec![i % 2 == 0],
            })
            .collect()
    }

    /// Flat oracle scan of any TupleScan.
    fn rows_of(rel: &dyn TupleScan) -> Vec<(u64, Vec<f64>, Vec<bool>)> {
        let mut out = Vec::new();
        rel.for_each_row(&mut |row, nums, bools| out.push((row, nums.to_vec(), bools.to_vec())))
            .unwrap();
        out
    }

    #[test]
    fn appends_reach_the_wal_before_the_version() {
        let dir = tmp_dir("wal-first");
        let base = base_file(&dir, 10);
        let data = dir.join("data");
        let rec = DurableRelation::open(&base, &data, DurabilityConfig::default()).unwrap();
        let rel = rec.relation;
        assert_eq!(rel.len(), 10);
        let v1 = rel.with_rows(&frame(100.0, 3)).unwrap();
        assert_eq!(v1.len(), 13);
        // The WAL holds the frame even though no checkpoint ran.
        let stats = v1.durability_stats().unwrap();
        assert_eq!(stats.unflushed_rows, 3);
        assert_eq!(stats.segments_spilled, 0);
        assert!(stats.wal_bytes > 8);
        // Old version still scans its snapshot.
        assert_eq!(rel.len(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_budget_bounds_the_tail_and_truncates_the_wal() {
        let dir = tmp_dir("spill");
        let base = base_file(&dir, 10);
        let data = dir.join("data");
        let config = DurabilityConfig {
            spill_rows: 8,
            sync: WalSync::Always,
        };
        let mut rel = DurableRelation::open(&base, &data, config)
            .unwrap()
            .relation;
        for batch in 0..10 {
            rel = rel.with_rows(&frame(batch as f64, 3)).unwrap();
            assert!(
                rel.tail_rows() < 8,
                "tail {} after batch {batch}",
                rel.tail_rows()
            );
        }
        assert_eq!(rel.len(), 40);
        let stats = rel.durability_stats().unwrap();
        assert!(stats.segments_spilled >= 3);
        // The WAL holds at most the unflushed tail (3 rows here), never
        // the full append history: each checkpoint truncated it.
        assert!(stats.wal_bytes < 200, "wal_bytes {}", stats.wal_bytes);
        assert!(stats.unflushed_rows < 8);
        // An explicit flush empties it down to the 8-byte header.
        let rel = rel.checkpointed().unwrap().expect("tail to flush");
        assert_eq!(rel.durability_stats().unwrap().wal_bytes, 8);
        // The spilled relation still scans like the flat concatenation.
        let reopened = DurableRelation::open(&base, &data, config).unwrap();
        assert_eq!(rows_of(&reopened.relation), rows_of(&rel));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointed_spills_the_tail_once() {
        let dir = tmp_dir("flush");
        let base = base_file(&dir, 5);
        let data = dir.join("data");
        let rel = DurableRelation::open(&base, &data, DurabilityConfig::default())
            .unwrap()
            .relation;
        // Nothing to flush on a fresh open.
        assert!(rel.checkpointed().unwrap().is_none());
        let v1 = rel.with_rows(&frame(1.0, 4)).unwrap();
        let flushed = v1.checkpointed().unwrap().expect("tail must flush");
        assert_eq!(flushed.len(), 9);
        assert_eq!(flushed.tail_rows(), 0);
        let stats = flushed.durability_stats().unwrap();
        assert_eq!(stats.unflushed_rows, 0);
        assert_eq!(stats.segments_spilled, 1);
        assert_eq!(stats.last_checkpoint_generation, 1);
        assert_eq!(stats.wal_bytes, 8);
        // Same rows, same order — and idempotent.
        assert_eq!(rows_of(&flushed), rows_of(&v1));
        assert!(flushed.checkpointed().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_mismatch_leaves_wal_and_version_untouched() {
        let dir = tmp_dir("mismatch");
        let base = base_file(&dir, 5);
        let data = dir.join("data");
        let rel = DurableRelation::open(&base, &data, DurabilityConfig::default())
            .unwrap()
            .relation;
        let before = rel.durability_stats().unwrap();
        let bad = RowFrame {
            numeric: vec![1.0],
            boolean: vec![true],
        };
        assert!(rel.with_rows(&[bad]).is_err());
        assert_eq!(rel.durability_stats().unwrap(), before);
        // The WAL gained no frame: reopening finds exactly the base.
        let reopened = DurableRelation::open(&base, &data, DurabilityConfig::default()).unwrap();
        assert_eq!(reopened.relation.len(), 5);
        assert_eq!(reopened.generation, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn columnar_blocks_match_visitor_over_spilled_base_and_tail() {
        let dir = tmp_dir("columnar");
        let base = base_file(&dir, 20);
        let data = dir.join("data");
        let config = DurabilityConfig {
            spill_rows: 8,
            sync: WalSync::Always,
        };
        let mut rel = DurableRelation::open(&base, &data, config)
            .unwrap()
            .relation;
        for batch in 0..7 {
            rel = rel.with_rows(&frame(batch as f64, 5)).unwrap();
        }
        // Spilled segments and an in-memory tail both present.
        let stats = rel.durability_stats().unwrap();
        assert!(stats.segments_spilled >= 1);
        assert!(rel.tail_rows() > 0);
        let n = rel.len();
        crate::columnar::tests::assert_blocks_match_visitor(&rel, 0..n);
        crate::columnar::tests::assert_blocks_match_visitor(&rel, 7..(n - 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_finite_append_rejected_before_the_wal() {
        let dir = tmp_dir("nonfinite");
        let base = base_file(&dir, 5);
        let data = dir.join("data");
        let rel = DurableRelation::open(&base, &data, DurabilityConfig::default())
            .unwrap()
            .relation;
        let before = rel.durability_stats().unwrap();
        let bad = RowFrame {
            numeric: vec![f64::NAN, 1.0],
            boolean: vec![true],
        };
        match rel.with_rows(&[bad]) {
            Err(crate::error::RelationError::NonFiniteValue { column: 0, .. }) => {}
            other => panic!("expected NonFiniteValue, got {other:?}"),
        }
        assert_eq!(rel.durability_stats().unwrap(), before);
        // The WAL gained no frame: reopening replays nothing.
        let reopened = DurableRelation::open(&base, &data, DurabilityConfig::default()).unwrap();
        assert_eq!(reopened.relation.len(), 5);
        assert_eq!(reopened.generation, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plain_stores_report_no_durability() {
        let rel = Relation::new(schema());
        assert!(rel.durability_stats().is_none());
        assert!(rel.checkpointed().unwrap().is_none());
        let chunked = ChunkedRelation::new(rel);
        assert!(chunked.durability_stats().is_none());
        assert!(chunked.checkpointed().unwrap().is_none());
    }
}
