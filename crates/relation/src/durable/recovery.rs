//! Crash recovery: rebuilding a [`DurableRelation`] from base file +
//! manifest + spilled segments + WAL tail.
//!
//! Recovery is a pure function of the data directory:
//!
//! 1. open the base relation file and the `MANIFEST` (a missing
//!    manifest means a fresh directory — one is initialized);
//! 2. validate the manifest against the files (base row count, schema
//!    arity, segment row totals) — disagreement is corruption and an
//!    error, never a silent truncation;
//! 3. stack base + segments into one scannable store and replay the WAL
//!    tail on top, tolerating a torn final frame and skipping frames a
//!    checkpoint already covered (a crash can land between the manifest
//!    rename and the WAL truncation);
//! 4. resume the generation counter at `manifest.generation` plus one
//!    per replayed frame — each logged append was exactly one engine
//!    generation.

use super::spill::{read_manifest, write_manifest, BaseStack, Manifest};
use super::wal::{self, WalWriter, WAL_FILE};
use super::{DurabilityConfig, DurableRelation, DurableStore, StoreState, WalSync};
use crate::chunked::ChunkedRelation;
use crate::error::{RelationError, Result};
use crate::file::FileRelation;
use crate::scan::TupleScan;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The outcome of opening a data directory: the recovered relation plus
/// what recovery had to do to produce it.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered, append-ready relation.
    pub relation: DurableRelation,
    /// Generation to resume the engine at (checkpointed generation plus
    /// one per replayed WAL frame).
    pub generation: u64,
    /// WAL frames replayed on top of the checkpointed state.
    pub replayed_frames: u64,
    /// Rows those frames held.
    pub replayed_rows: u64,
}

pub(crate) fn recover(base: &Path, dir: &Path, config: DurabilityConfig) -> Result<Recovery> {
    std::fs::create_dir_all(dir)?;
    let base_rel = Arc::new(FileRelation::open(base)?);
    let schema = base_rel.schema().clone();
    let layout = base_rel.layout();
    let bad = |msg: String| RelationError::BadHeader(format!("{}: {msg}", dir.display()));

    let (manifest, parts) = match read_manifest(dir)? {
        None => {
            // Fresh directory: record the starting state so a later
            // open can validate against a swapped base file.
            let manifest = Manifest {
                base_rows: base_rel.len(),
                numeric_count: layout.numeric_count,
                boolean_count: layout.boolean_count,
                generation: 0,
                durable_rows: base_rel.len(),
                segments: Vec::new(),
            };
            write_manifest(dir, &manifest)?;
            (manifest, vec![Arc::clone(&base_rel)])
        }
        Some(manifest) => {
            if manifest.base_rows != base_rel.len() {
                return Err(bad(format!(
                    "manifest expects a base of {} rows but {} has {}",
                    manifest.base_rows,
                    base.display(),
                    base_rel.len()
                )));
            }
            if manifest.numeric_count != layout.numeric_count
                || manifest.boolean_count != layout.boolean_count
            {
                return Err(bad(format!(
                    "manifest schema arity {}+{} does not match the base file's {}+{}",
                    manifest.numeric_count,
                    manifest.boolean_count,
                    layout.numeric_count,
                    layout.boolean_count
                )));
            }
            let mut parts = vec![Arc::clone(&base_rel)];
            for name in &manifest.segments {
                parts.push(Arc::new(FileRelation::open(dir.join(name))?));
            }
            let total: u64 = parts.iter().map(|p| p.len()).sum();
            if total != manifest.durable_rows {
                return Err(bad(format!(
                    "manifest records {} durable rows but base + segments hold {total}",
                    manifest.durable_rows
                )));
            }
            (manifest, parts)
        }
    };

    let next_segment_id = manifest
        .segments
        .iter()
        .filter_map(|n| {
            n.strip_prefix("seg-")?
                .strip_suffix(".rel")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .map_or(manifest.segments.len() as u64, |id| id + 1);

    let mut inner = ChunkedRelation::new(BaseStack::new(parts)?);

    // Replay the WAL tail regardless of the *new* sync mode: a previous
    // run may have logged rows this run must not drop.
    let wal_path = dir.join(WAL_FILE);
    let replayed = wal::replay(&wal_path, layout, manifest.durable_rows)?;
    let mut replayed_rows = 0u64;
    for rows in &replayed.frames {
        inner = inner.append(rows)?;
        replayed_rows += rows.len() as u64;
    }
    let replayed_frames = replayed.frames.len() as u64;
    let generation = manifest.generation + replayed_frames;

    let wal_writer = if config.sync == WalSync::Off {
        None
    } else {
        Some(WalWriter::open(&wal_path, layout, replayed.valid_len)?)
    };

    let store = Arc::new(DurableStore {
        dir: dir.to_path_buf(),
        schema,
        layout,
        config,
        state: Mutex::new(StoreState {
            wal: wal_writer,
            durable_rows: manifest.durable_rows,
            generation,
            last_checkpoint_generation: manifest.generation,
            segments: manifest.segments,
            next_segment_id,
            base_rows: base_rel.len(),
        }),
        wal_fsync: optrules_obs::Histogram::new(),
        checkpoint: optrules_obs::Histogram::new(),
    });
    let mut relation = DurableRelation::from_parts(inner, store);

    if config.sync == WalSync::Off {
        // No WAL going forward: make the replayed rows durable now,
        // then drop the stale log.
        if replayed_rows > 0 {
            relation = relation.force_checkpoint()?;
        }
        let _ = std::fs::remove_file(&wal_path);
    }

    Ok(Recovery {
        relation,
        generation,
        replayed_frames,
        replayed_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunked::{AppendRows, RowFrame};
    use crate::durable::Durability;
    use crate::file::FileRelationWriter;
    use crate::memory::Relation;
    use crate::scan::TupleScan;
    use crate::schema::Schema;
    use std::path::PathBuf;

    fn schema() -> Schema {
        Schema::builder()
            .numeric("X")
            .numeric("Y")
            .boolean("B")
            .build()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "optrules-recovery-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_file(dir: &Path, rows: u64) -> PathBuf {
        let path = dir.join("base.rel");
        let mut w = FileRelationWriter::create(&path, schema()).unwrap();
        for i in 0..rows {
            w.push_row(&[i as f64, (i * 2) as f64], &[i % 3 == 0])
                .unwrap();
        }
        w.finish().unwrap();
        path
    }

    fn frame(tag: f64, rows: usize) -> Vec<RowFrame> {
        (0..rows)
            .map(|i| RowFrame {
                numeric: vec![tag, i as f64],
                boolean: vec![i % 2 == 0],
            })
            .collect()
    }

    fn rows_of(rel: &dyn TupleScan) -> Vec<(u64, Vec<f64>, Vec<bool>)> {
        let mut out = Vec::new();
        rel.for_each_row(&mut |row, nums, bools| out.push((row, nums.to_vec(), bools.to_vec())))
            .unwrap();
        out
    }

    /// Flat in-memory oracle: base rows then frames, in order.
    fn oracle(base_rows: u64, frames: &[Vec<RowFrame>]) -> Relation {
        let mut rel = Relation::new(schema());
        for i in 0..base_rows {
            rel.push_row(&[i as f64, (i * 2) as f64], &[i % 3 == 0])
                .unwrap();
        }
        for rows in frames {
            for row in rows {
                rel.push_row(&row.numeric, &row.boolean).unwrap();
            }
        }
        rel
    }

    #[test]
    fn reopen_recovers_wal_rows_and_generation() {
        let dir = tmp_dir("reopen");
        let base = base_file(&dir, 10);
        let data = dir.join("data");
        let config = DurabilityConfig::default();
        let frames = vec![frame(1.0, 3), frame(2.0, 2), frame(3.0, 4)];
        {
            let mut rel = DurableRelation::open(&base, &data, config)
                .unwrap()
                .relation;
            for rows in &frames {
                rel = rel.with_rows(rows).unwrap();
            }
            // Dropped without any checkpoint: rows live only in the WAL.
        }
        let rec = DurableRelation::open(&base, &data, config).unwrap();
        assert_eq!(rec.generation, 3);
        assert_eq!(rec.replayed_frames, 3);
        assert_eq!(rec.replayed_rows, 9);
        assert_eq!(rec.relation.len(), 19);
        assert_eq!(rows_of(&rec.relation), rows_of(&oracle(10, &frames)));
        // Idempotent: a second recovery sees the same state.
        let again = DurableRelation::open(&base, &data, config).unwrap();
        assert_eq!(again.generation, 3);
        assert_eq!(rows_of(&again.relation), rows_of(&rec.relation));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_spans_checkpoints_and_restarts() {
        let dir = tmp_dir("generation");
        let base = base_file(&dir, 5);
        let data = dir.join("data");
        let config = DurabilityConfig::default();
        {
            let mut rel = DurableRelation::open(&base, &data, config)
                .unwrap()
                .relation;
            for i in 0..3 {
                rel = rel.with_rows(&frame(i as f64, 2)).unwrap();
            }
            rel = rel.checkpointed().unwrap().unwrap();
            rel = rel.with_rows(&frame(9.0, 1)).unwrap();
            let _ = rel;
        }
        // 3 checkpointed generations + 1 replayed frame.
        let rec = DurableRelation::open(&base, &data, config).unwrap();
        assert_eq!(rec.generation, 4);
        assert_eq!(rec.replayed_frames, 1);
        assert_eq!(rec.relation.len(), 12);
        let stats = rec.relation.durability_stats().unwrap();
        assert_eq!(stats.last_checkpoint_generation, 3);
        assert_eq!(stats.unflushed_rows, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A crash between the manifest rename and the WAL truncation must
    /// not double-apply the spilled rows.
    #[test]
    fn interrupted_wal_truncation_skips_covered_frames() {
        let dir = tmp_dir("covered");
        let base = base_file(&dir, 4);
        let data = dir.join("data");
        let config = DurabilityConfig::default();
        let frames = vec![frame(1.0, 2), frame(2.0, 3)];
        {
            let mut rel = DurableRelation::open(&base, &data, config)
                .unwrap()
                .relation;
            for rows in &frames {
                rel = rel.with_rows(rows).unwrap();
            }
            // Snapshot the WAL as of "before the checkpoint truncated
            // it", checkpoint, then put the stale WAL back — exactly the
            // on-disk state a crash between the two steps leaves.
            let wal_bytes = std::fs::read(data.join(WAL_FILE)).unwrap();
            let rel = rel.checkpointed().unwrap().unwrap();
            drop(rel);
            std::fs::write(data.join(WAL_FILE), wal_bytes).unwrap();
        }
        let rec = DurableRelation::open(&base, &data, config).unwrap();
        assert_eq!(rec.replayed_frames, 0, "both frames were checkpointed");
        assert_eq!(rec.generation, 2);
        assert_eq!(rec.relation.len(), 9);
        assert_eq!(rows_of(&rec.relation), rows_of(&oracle(4, &frames)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_off_checkpoints_a_stale_wal_then_drops_it() {
        let dir = tmp_dir("off-migrate");
        let base = base_file(&dir, 4);
        let data = dir.join("data");
        {
            let rel = DurableRelation::open(&base, &data, DurabilityConfig::default())
                .unwrap()
                .relation;
            let _ = rel.with_rows(&frame(1.0, 3)).unwrap();
        }
        let off = DurabilityConfig {
            sync: WalSync::Off,
            ..DurabilityConfig::default()
        };
        let rec = DurableRelation::open(&base, &data, off).unwrap();
        assert_eq!(rec.replayed_rows, 3, "the Always-mode rows survive");
        assert_eq!(rec.relation.len(), 7);
        assert_eq!(rec.relation.tail_rows(), 0, "replayed rows were spilled");
        assert!(!data.join(WAL_FILE).exists(), "stale WAL removed");
        // Off-mode appends are volatile until a flush…
        let v1 = rec.relation.with_rows(&frame(2.0, 2)).unwrap();
        assert_eq!(v1.durability_stats().unwrap().wal_bytes, 0);
        drop(v1);
        let rec = DurableRelation::open(&base, &data, off).unwrap();
        assert_eq!(rec.relation.len(), 7, "unflushed Off-mode tail is lost");
        // …and durable after one.
        let v1 = rec.relation.with_rows(&frame(3.0, 2)).unwrap();
        let flushed = v1.checkpointed().unwrap().unwrap();
        drop(flushed);
        let rec = DurableRelation::open(&base, &data, off).unwrap();
        assert_eq!(rec.relation.len(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_file_disagreements_are_errors() {
        let dir = tmp_dir("disagree");
        let base = base_file(&dir, 6);
        let data = dir.join("data");
        let config = DurabilityConfig::default();
        {
            let rel = DurableRelation::open(&base, &data, config)
                .unwrap()
                .relation;
            let v1 = rel.with_rows(&frame(1.0, 2)).unwrap();
            let _ = v1.checkpointed().unwrap().unwrap();
        }
        // Swapped base file (different row count).
        let other = dir.join("other.rel");
        let mut w = FileRelationWriter::create(&other, schema()).unwrap();
        w.push_row(&[0.0, 0.0], &[false]).unwrap();
        w.finish().unwrap();
        assert!(matches!(
            DurableRelation::open(&other, &data, config),
            Err(RelationError::BadHeader(_))
        ));
        // Missing segment file.
        std::fs::remove_file(data.join("seg-000000.rel")).unwrap();
        assert!(DurableRelation::open(&base, &data, config).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_ids_resume_past_existing_files() {
        let dir = tmp_dir("segids");
        let base = base_file(&dir, 3);
        let data = dir.join("data");
        let config = DurabilityConfig::default();
        {
            let rel = DurableRelation::open(&base, &data, config)
                .unwrap()
                .relation;
            let v = rel.with_rows(&frame(1.0, 2)).unwrap();
            let v = v.checkpointed().unwrap().unwrap();
            let v = v.with_rows(&frame(2.0, 2)).unwrap();
            let _ = v.checkpointed().unwrap().unwrap();
        }
        let rec = DurableRelation::open(&base, &data, config).unwrap();
        let v = rec.relation.with_rows(&frame(3.0, 2)).unwrap();
        let _ = v.checkpointed().unwrap().unwrap();
        // Three distinct segment files, never overwritten.
        for id in 0..3 {
            assert!(data.join(format!("seg-{id:06}.rel")).exists(), "seg {id}");
        }
        let rec = DurableRelation::open(&base, &data, config).unwrap();
        assert_eq!(rec.relation.len(), 9);
        assert_eq!(rec.relation.durability_stats().unwrap().segments_spilled, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
