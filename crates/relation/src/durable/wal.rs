//! The write-ahead log: length-prefixed, CRC32-checksummed append
//! frames with torn-tail-tolerant replay.
//!
//! File layout:
//!
//! ```text
//! [magic "OPTWAL01"]
//! [frame 0][frame 1]…
//! ```
//!
//! Each frame is `[payload_len u32][crc32 u32][payload]`, all
//! little-endian, where the payload is
//! `[start_row u64][row_count u32][row_count fixed-width records]`
//! encoded with the same [`RecordLayout`] as the relation file itself.
//! The CRC covers the payload only, so a frame whose length field was
//! torn mid-write fails the payload-length check and a frame whose
//! payload was torn fails the checksum — either way replay stops at
//! the last fully-written frame and truncates the tail, which is
//! exactly the set of rows that were never acknowledged (the writer
//! syncs *before* the append ack goes out).
//!
//! The checksum is the standard reflected CRC-32 (IEEE 802.3,
//! polynomial `0xEDB88320`), hand-rolled as a compile-time table so
//! the crate stays dependency-free.

use crate::chunked::RowFrame;
use crate::encoding::RecordLayout;
use crate::error::{RelationError, Result};
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// File name of the WAL inside a data directory.
pub(crate) const WAL_FILE: &str = "wal.log";

const MAGIC: &[u8; 8] = b"OPTWAL01";
/// Bytes of the per-frame header: payload length + CRC32.
const FRAME_HEADER: usize = 8;
/// Sanity cap on a frame payload; anything larger is treated as a torn
/// or corrupt length field. Generous next to the protocol's 1024-row
/// append cap.
const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// Reflected CRC-32 (IEEE) lookup table, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// The standard reflected CRC-32 over `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Result of replaying a WAL on open.
pub(crate) struct Replay {
    /// Append frames holding rows past the checkpoint, oldest first.
    /// Each inner vec was one logged append (= one relation
    /// generation).
    pub frames: Vec<Vec<RowFrame>>,
    /// Byte length of the valid prefix (any torn tail starts here).
    pub valid_len: u64,
}

/// Replays the WAL at `path`, tolerating a torn tail.
///
/// Frames wholly covered by `durable_rows` (already spilled to a
/// segment before the last checkpoint's WAL truncation was interrupted)
/// are skipped; rows past `durable_rows` are returned in order. Replay
/// stops — and reports the truncation point — at the first frame that
/// is short, oversized, fails its checksum, or is discontiguous with
/// its predecessor.
pub(crate) fn replay(path: &Path, layout: RecordLayout, durable_rows: u64) -> Result<Replay> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                frames: Vec::new(),
                valid_len: 0,
            })
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < MAGIC.len() {
        // A crash before the header finished: nothing was ever logged.
        return Ok(Replay {
            frames: Vec::new(),
            valid_len: 0,
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        // Refuse to silently wipe a file that isn't ours.
        return Err(RelationError::BadHeader(format!(
            "{} is not an optrules WAL (bad magic)",
            path.display()
        )));
    }

    let record_size = layout.record_size();
    let mut frames = Vec::new();
    let mut pos = MAGIC.len();
    let mut expected_next: Option<u64> = None;
    let mut nums = vec![0.0_f64; layout.numeric_count];
    let mut bools = vec![false; layout.boolean_count];
    // A short header means a torn tail: stop replaying there.
    while let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
        let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if payload_len < 12 || payload_len as u32 > MAX_FRAME_PAYLOAD {
            break; // torn or corrupt length field
        }
        let Some(payload) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + payload_len) else {
            break; // short payload: torn tail
        };
        if crc32(payload) != crc {
            break; // payload torn mid-write or bit-rotted
        }
        let start_row = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
        if payload_len != 12 + count * record_size {
            break; // internally inconsistent: treat as corruption
        }
        if let Some(expected) = expected_next {
            if start_row != expected {
                break; // discontiguous: everything past here is suspect
            }
        } else if start_row > durable_rows {
            // A gap between the checkpointed rows and the first frame
            // would mean acknowledged rows are simply missing — that is
            // a mismatched manifest/WAL pair, not a torn tail.
            return Err(RelationError::BadHeader(format!(
                "WAL starts at row {start_row} but the checkpoint covers only {durable_rows} \
                 rows ({} does not match its manifest)",
                path.display()
            )));
        }
        expected_next = Some(start_row + count as u64);
        // Keep only rows past the checkpoint; a whole frame at or below
        // `durable_rows` was already spilled (its generation is part of
        // the manifest's), so it must not count as a replayed frame.
        let skip = durable_rows.saturating_sub(start_row).min(count as u64) as usize;
        if skip < count {
            let mut rows = Vec::with_capacity(count - skip);
            for i in skip..count {
                let record = &payload[12 + i * record_size..12 + (i + 1) * record_size];
                layout.decode_row(record, &mut nums, &mut bools)?;
                rows.push(RowFrame {
                    numeric: nums.clone(),
                    boolean: bools.clone(),
                });
            }
            frames.push(rows);
        }
        pos += FRAME_HEADER + payload_len;
    }
    Ok(Replay {
        frames,
        valid_len: pos as u64,
    })
}

/// Appending side of the WAL. Opened at the valid length reported by
/// [`replay`] (any torn tail is cut off first).
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: std::fs::File,
    bytes: u64,
    layout: RecordLayout,
    /// Fault-injection knob (`OPTRULES_WAL_CHUNK`): write frames in
    /// chunks of this many bytes so a `kill -9` can land between the
    /// syscalls of one frame — the torn-tail window the crash-recovery
    /// harness widens on purpose. `None` in production.
    chunk: Option<usize>,
    buf: Vec<u8>,
}

impl WalWriter {
    /// Opens (creating if needed) the WAL at `path`, truncating
    /// anything past `valid_len`, honoring the `OPTRULES_WAL_CHUNK`
    /// fault knob.
    pub fn open(path: &Path, layout: RecordLayout, valid_len: u64) -> Result<Self> {
        let chunk = std::env::var("OPTRULES_WAL_CHUNK")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0);
        Self::open_with_chunk(path, layout, valid_len, chunk)
    }

    /// [`open`](Self::open) with an explicit fault-injection chunk size
    /// (tests inject it directly; the env var is racy across parallel
    /// tests).
    pub fn open_with_chunk(
        path: &Path,
        layout: RecordLayout,
        valid_len: u64,
        chunk: Option<usize>,
    ) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let bytes = if valid_len < MAGIC.len() as u64 {
            file.set_len(0)?;
            file.write_all(MAGIC)?;
            file.sync_data()?;
            MAGIC.len() as u64
        } else {
            // Cut off the torn tail so new frames start on a boundary.
            file.set_len(valid_len)?;
            file.seek(SeekFrom::Start(valid_len))?;
            valid_len
        };
        Ok(Self {
            file,
            bytes,
            layout,
            chunk,
            buf: Vec::new(),
        })
    }

    /// Current file length (header + frames) — the `wal_bytes` stat.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one frame for `rows` starting at relation row
    /// `start_row`; when `sync`, fsyncs before returning so the caller
    /// may acknowledge the append.
    pub fn append(&mut self, start_row: u64, rows: &[RowFrame], sync: bool) -> Result<()> {
        self.buf.clear();
        self.buf.extend_from_slice(&[0u8; FRAME_HEADER]);
        self.buf.extend_from_slice(&start_row.to_le_bytes());
        self.buf
            .extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for row in rows {
            self.layout
                .encode_row(&row.numeric, &row.boolean, &mut self.buf)?;
        }
        let payload_len = (self.buf.len() - FRAME_HEADER) as u32;
        let crc = crc32(&self.buf[FRAME_HEADER..]);
        self.buf[0..4].copy_from_slice(&payload_len.to_le_bytes());
        self.buf[4..8].copy_from_slice(&crc.to_le_bytes());
        match self.chunk {
            None => self.file.write_all(&self.buf)?,
            Some(n) => {
                for piece in self.buf.chunks(n) {
                    self.file.write_all(piece)?;
                }
            }
        }
        if sync {
            self.file.sync_data()?;
        }
        self.bytes += self.buf.len() as u64;
        Ok(())
    }

    /// Truncates the log back to its empty (header-only) state — called
    /// after a checkpoint has made every logged row durable elsewhere.
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(MAGIC.len() as u64))?;
        self.file.sync_data()?;
        self.bytes = MAGIC.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn layout() -> RecordLayout {
        RecordLayout::new(2, 1)
    }

    fn frame(tag: f64, rows: usize) -> Vec<RowFrame> {
        (0..rows)
            .map(|i| RowFrame {
                numeric: vec![tag, i as f64],
                boolean: vec![i % 2 == 0],
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "optrules-wal-test-{}-{name}.log",
            std::process::id()
        ))
    }

    /// Writes `frames` to a fresh WAL at `path` and returns the raw
    /// bytes.
    fn write_wal(path: &Path, frames: &[Vec<RowFrame>], chunk: Option<usize>) -> Vec<u8> {
        let _ = std::fs::remove_file(path);
        let mut writer = WalWriter::open_with_chunk(path, layout(), 0, chunk).unwrap();
        let mut start = 0u64;
        for rows in frames {
            writer.append(start, rows, true).unwrap();
            start += rows.len() as u64;
        }
        std::fs::read(path).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_frames_and_rows() {
        let path = tmp("roundtrip");
        let frames = vec![frame(1.0, 3), frame(2.0, 1), frame(3.0, 5)];
        let bytes = write_wal(&path, &frames, None);
        let replayed = replay(&path, layout(), 0).unwrap();
        assert_eq!(replayed.frames, frames);
        assert_eq!(replayed.valid_len, bytes.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunked_writes_are_byte_identical() {
        let a = tmp("chunk-a");
        let b = tmp("chunk-b");
        let frames = vec![frame(1.0, 4), frame(2.0, 2)];
        let plain = write_wal(&a, &frames, None);
        let chunked = write_wal(&b, &frames, Some(3));
        assert_eq!(plain, chunked);
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    /// The torn-tail guarantee: truncate the file at *every* byte
    /// offset; replay always recovers exactly the frames fully written
    /// before the cut and reports a valid length on a frame boundary.
    #[test]
    fn truncation_at_any_offset_recovers_the_frame_prefix() {
        let path = tmp("torn");
        let frames = vec![frame(1.0, 2), frame(2.0, 3), frame(3.0, 1)];
        let bytes = write_wal(&path, &frames, None);
        // Frame boundaries in the file.
        let mut boundaries = vec![MAGIC.len()];
        let mut pos = MAGIC.len();
        while pos < bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += FRAME_HEADER + len;
            boundaries.push(pos);
        }
        for cut in 0..=bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let replayed = replay(&path, layout(), 0).unwrap();
            if cut < MAGIC.len() {
                // Not even a header: treated as a never-used log.
                assert!(replayed.frames.is_empty(), "cut at byte {cut}");
                assert_eq!(replayed.valid_len, 0, "cut {cut}");
                continue;
            }
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replayed.frames, frames[..whole], "cut at byte {cut}");
            assert_eq!(replayed.valid_len, boundaries[whole] as u64, "cut {cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_byte_truncates_from_that_frame() {
        let path = tmp("corrupt");
        let frames = vec![frame(1.0, 2), frame(2.0, 2)];
        let mut bytes = write_wal(&path, &frames, None);
        // Flip a byte inside the second frame's payload.
        let first_len =
            u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap()) as usize;
        let second = MAGIC.len() + FRAME_HEADER + first_len;
        bytes[second + FRAME_HEADER + 4] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path, layout(), 0).unwrap();
        assert_eq!(replayed.frames, frames[..1]);
        assert_eq!(replayed.valid_len, second as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frames_covered_by_the_checkpoint_are_skipped() {
        let path = tmp("skip");
        let frames = vec![frame(1.0, 2), frame(2.0, 3), frame(3.0, 1)];
        write_wal(&path, &frames, None);
        // The checkpoint covered the first two frames (5 rows): an
        // interrupted WAL truncation must not replay them again.
        let replayed = replay(&path, layout(), 5).unwrap();
        assert_eq!(replayed.frames, frames[2..]);
        // Covering everything replays nothing.
        assert!(replay(&path, layout(), 6).unwrap().frames.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_and_short_header_are_empty() {
        let path = tmp("absent");
        let _ = std::fs::remove_file(&path);
        assert!(replay(&path, layout(), 0).unwrap().frames.is_empty());
        std::fs::write(&path, b"OPT").unwrap();
        let replayed = replay(&path, layout(), 0).unwrap();
        assert!(replayed.frames.is_empty());
        assert_eq!(replayed.valid_len, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_magic_is_an_error_not_a_wipe() {
        let path = tmp("foreign");
        std::fs::write(&path, b"NOTAWAL0 and then some").unwrap();
        assert!(matches!(
            replay(&path, layout(), 0),
            Err(RelationError::BadHeader(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn row_gap_against_the_manifest_is_an_error() {
        let path = tmp("gap");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open_with_chunk(&path, layout(), 0, None).unwrap();
        writer.append(10, &frame(1.0, 2), true).unwrap();
        // Checkpoint says 4 durable rows, the WAL starts at row 10:
        // rows 4..10 are gone — corruption, not a torn tail.
        assert!(matches!(
            replay(&path, layout(), 4),
            Err(RelationError::BadHeader(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_then_append_reuses_the_file() {
        let path = tmp("truncate");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open_with_chunk(&path, layout(), 0, None).unwrap();
        writer.append(0, &frame(1.0, 4), true).unwrap();
        writer.truncate().unwrap();
        assert_eq!(writer.bytes(), MAGIC.len() as u64);
        writer.append(4, &frame(2.0, 2), true).unwrap();
        let replayed = replay(&path, layout(), 4).unwrap();
        assert_eq!(replayed.frames, vec![frame(2.0, 2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_after_torn_tail_appends_on_the_boundary() {
        let path = tmp("reopen");
        let frames = vec![frame(1.0, 2), frame(2.0, 2)];
        let bytes = write_wal(&path, &frames, None);
        // Tear the second frame.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replayed = replay(&path, layout(), 0).unwrap();
        assert_eq!(replayed.frames, frames[..1]);
        let mut writer =
            WalWriter::open_with_chunk(&path, layout(), replayed.valid_len, None).unwrap();
        writer.append(2, &frame(9.0, 1), true).unwrap();
        let again = replay(&path, layout(), 0).unwrap();
        assert_eq!(again.frames, vec![frame(1.0, 2), frame(9.0, 1)]);
        std::fs::remove_file(&path).unwrap();
    }
}
