//! Segment spill: writing frozen in-memory tail rows back to disk as
//! relation files, and stacking the resulting file segments into one
//! scannable base.
//!
//! A checkpoint turns the in-memory tail of a
//! [`ChunkedRelation`](crate::chunked::ChunkedRelation) into a
//! `seg-NNNNNN.rel` file (same "OPTR" format as the original base, via
//! [`FileRelationWriter`]), then records the new segment list in a
//! `MANIFEST`. Both writes are crash-atomic: data goes to a `.tmp`
//! path, is fsync'd, and is renamed into place — a crash leaves either
//! the old state or the new state, never a half-written file that the
//! next open would trust.

use crate::columnar::{BlockVisitor, ColumnarScan};
use crate::error::{RelationError, Result};
use crate::file::{FileRelation, FileRelationWriter};
use crate::scan::{RandomAccess, RowVisitor, TupleScan};
use crate::schema::{NumAttr, Schema};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// File name of the manifest inside a data directory.
pub(crate) const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "optrules-manifest v1";

/// A read-only base made of stacked file segments: the original base
/// relation followed by spilled segments, scanned in order as one
/// relation. Always holds at least one part.
#[derive(Debug)]
pub(crate) struct BaseStack {
    parts: Vec<Arc<FileRelation>>,
    /// Global start row of each part (parallel to `parts`).
    starts: Vec<u64>,
    rows: u64,
}

impl BaseStack {
    /// Stacks `parts` in order. Must be non-empty; every part must share
    /// the first part's schema (the caller validates names; arity
    /// mismatches would corrupt scans, so they are checked here).
    pub fn new(parts: Vec<Arc<FileRelation>>) -> Result<Self> {
        let first = parts.first().expect("BaseStack needs at least one part");
        let schema = first.schema().clone();
        let mut starts = Vec::with_capacity(parts.len());
        let mut rows = 0u64;
        for part in &parts {
            if part.schema() != &schema {
                return Err(RelationError::SchemaMismatch {
                    expected: format!("{schema:?}"),
                    got: format!("{:?} (segment {})", part.schema(), part.path().display()),
                });
            }
            starts.push(rows);
            rows += part.len();
        }
        Ok(Self {
            parts,
            starts,
            rows,
        })
    }

    /// A new stack with one more part appended.
    pub fn with_part(&self, part: Arc<FileRelation>) -> Self {
        let mut parts = self.parts.clone();
        let mut starts = self.starts.clone();
        starts.push(self.rows);
        let rows = self.rows + part.len();
        parts.push(part);
        Self {
            parts,
            starts,
            rows,
        }
    }
}

impl TupleScan for BaseStack {
    fn schema(&self) -> &Schema {
        self.parts[0].schema()
    }

    fn len(&self) -> u64 {
        self.rows
    }

    fn for_each_row_in(&self, range: Range<u64>, f: RowVisitor<'_>) -> Result<()> {
        let start = range.start;
        let end = range.end.min(self.rows);
        if start >= end {
            return Ok(());
        }
        for (part, &part_start) in self.parts.iter().zip(&self.starts) {
            if end <= part_start {
                break;
            }
            let part_end = part_start + part.len();
            if start >= part_end {
                continue;
            }
            let lo = start.max(part_start) - part_start;
            let hi = end.min(part_end) - part_start;
            part.for_each_row_in(lo..hi, &mut |row, nums, bools| {
                f(part_start + row, nums, bools);
            })?;
        }
        Ok(())
    }

    fn as_columnar(&self) -> Option<&dyn ColumnarScan> {
        Some(self)
    }
}

impl ColumnarScan for BaseStack {
    /// Forwards to each overlapping [`FileRelation`] part in row order,
    /// rebasing part-local blocks into the stack's global row space.
    fn for_each_block_in(&self, range: Range<u64>, f: BlockVisitor<'_>) -> Result<()> {
        let start = range.start;
        let end = range.end.min(self.rows);
        if start >= end {
            return Ok(());
        }
        for (part, &part_start) in self.parts.iter().zip(&self.starts) {
            if end <= part_start {
                break;
            }
            let part_end = part_start + part.len();
            if start >= part_end {
                continue;
            }
            let lo = start.max(part_start) - part_start;
            let hi = end.min(part_end) - part_start;
            part.for_each_block_in(lo..hi, &mut |block| {
                f(&block.rebased(part_start + block.start));
            })?;
        }
        Ok(())
    }
}

impl RandomAccess for BaseStack {
    fn numeric_at(&self, attr: NumAttr, row: u64) -> Result<f64> {
        if row >= self.rows {
            return Err(RelationError::RowOutOfBounds {
                row,
                len: self.rows,
            });
        }
        let i = self.starts.partition_point(|&s| s <= row) - 1;
        self.parts[i].numeric_at(attr, row - self.starts[i])
    }
}

/// The durable state a data directory records between runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Rows in the original base relation file when the directory was
    /// initialized (a safety check against swapping the base file).
    pub base_rows: u64,
    /// Numeric attribute count (schema arity check).
    pub numeric_count: usize,
    /// Boolean attribute count (schema arity check).
    pub boolean_count: usize,
    /// Engine generation as of the last checkpoint.
    pub generation: u64,
    /// Total rows durable in base + segments (rows past this live in
    /// the WAL).
    pub durable_rows: u64,
    /// Spilled segment file names, oldest first.
    pub segments: Vec<String>,
}

/// Atomically writes `manifest` into `dir` (tmp + fsync + rename + best
/// effort directory fsync).
pub(crate) fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<()> {
    let mut text = format!(
        "{MANIFEST_HEADER}\nbase_rows {}\nnumeric {}\nboolean {}\ngeneration {}\ndurable_rows {}\n",
        manifest.base_rows,
        manifest.numeric_count,
        manifest.boolean_count,
        manifest.generation,
        manifest.durable_rows,
    );
    for name in &manifest.segments {
        text.push_str("segment ");
        text.push_str(name);
        text.push('\n');
    }
    let tmp = dir.join("MANIFEST.tmp");
    let final_path = dir.join(MANIFEST_FILE);
    {
        let mut file = std::fs::File::create(&tmp)?;
        use std::io::Write;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, &final_path)?;
    sync_dir(dir);
    Ok(())
}

/// Reads the manifest in `dir`; `Ok(None)` when the directory has never
/// been checkpointed (fresh data dir).
pub(crate) fn read_manifest(dir: &Path) -> Result<Option<Manifest>> {
    let path = dir.join(MANIFEST_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let bad = |msg: String| RelationError::BadHeader(format!("{}: {msg}", path.display()));
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(bad(format!("expected {MANIFEST_HEADER:?} header")));
    }
    let mut fields = [None::<u64>; 5];
    const KEYS: [&str; 5] = [
        "base_rows",
        "numeric",
        "boolean",
        "generation",
        "durable_rows",
    ];
    let mut segments = Vec::new();
    for line in lines {
        let Some((key, value)) = line.split_once(' ') else {
            return Err(bad(format!("malformed line {line:?}")));
        };
        if key == "segment" {
            segments.push(value.to_string());
            continue;
        }
        let Some(slot) = KEYS.iter().position(|&k| k == key) else {
            return Err(bad(format!("unknown key {key:?}")));
        };
        let parsed = value
            .parse::<u64>()
            .map_err(|_| bad(format!("{key} is not a number: {value:?}")))?;
        fields[slot] = Some(parsed);
    }
    let field = |i: usize| fields[i].ok_or_else(|| bad(format!("missing {}", KEYS[i])));
    Ok(Some(Manifest {
        base_rows: field(0)?,
        numeric_count: field(1)? as usize,
        boolean_count: field(2)? as usize,
        generation: field(3)?,
        durable_rows: field(4)?,
        segments,
    }))
}

/// Spills `source`'s rows in `range` into `dir/name` as an "OPTR"
/// relation file, crash-atomically, and opens the result.
pub(crate) fn spill_segment(
    dir: &Path,
    name: &str,
    schema: &Schema,
    source: &dyn TupleScan,
    range: Range<u64>,
) -> Result<Arc<FileRelation>> {
    let tmp = dir.join(format!("{name}.tmp"));
    let final_path = dir.join(name);
    let mut writer = FileRelationWriter::create(&tmp, schema.clone())?;
    // The visitor can't return an error, so capture the first failure
    // and re-raise it after the scan.
    let mut write_err: Option<RelationError> = None;
    source.for_each_row_in(range, &mut |_, nums, bools| {
        if write_err.is_none() {
            if let Err(e) = writer.push_row(nums, bools) {
                write_err = Some(e);
            }
        }
    })?;
    if let Some(e) = write_err {
        return Err(e);
    }
    // finish() syncs and reopens at the tmp path; drop that handle and
    // rename before the real open, because FileRelation re-opens its
    // own path on every sequential scan.
    drop(writer.finish()?);
    std::fs::rename(&tmp, &final_path)?;
    sync_dir(dir);
    Ok(Arc::new(FileRelation::open(&final_path)?))
}

/// Best-effort directory fsync so renames survive power loss; ignored on
/// platforms where opening a directory for sync is not supported.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(handle) = std::fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Relation;
    use std::path::PathBuf;

    fn schema() -> Schema {
        Schema::builder()
            .numeric("X")
            .numeric("Y")
            .boolean("B")
            .build()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("optrules-spill-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mem(rows: Range<u64>) -> Relation {
        let mut rel = Relation::new(schema());
        for i in rows {
            rel.push_row(&[i as f64, (i * 2) as f64], &[i % 3 == 0])
                .unwrap();
        }
        rel
    }

    #[test]
    fn manifest_roundtrips() {
        let dir = tmp_dir("manifest");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        let manifest = Manifest {
            base_rows: 100,
            numeric_count: 2,
            boolean_count: 1,
            generation: 7,
            durable_rows: 140,
            segments: vec!["seg-000000.rel".into(), "seg-000001.rel".into()],
        };
        write_manifest(&dir, &manifest).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(manifest.clone()));
        // Overwrite is atomic and replaces the old contents entirely.
        let newer = Manifest {
            generation: 9,
            segments: Vec::new(),
            ..manifest
        };
        write_manifest(&dir, &newer).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(newer));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_manifests_are_errors() {
        let dir = tmp_dir("badmanifest");
        for text in [
            "not a manifest\n",
            "optrules-manifest v1\nbase_rows ten\n",
            "optrules-manifest v1\nmystery 4\n",
            "optrules-manifest v1\nbase_rows 1\n", // missing fields
        ] {
            std::fs::write(dir.join(MANIFEST_FILE), text).unwrap();
            assert!(
                matches!(read_manifest(&dir), Err(RelationError::BadHeader(_))),
                "accepted {text:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilled_segment_holds_exactly_the_range() {
        let dir = tmp_dir("spill");
        let source = mem(0..50);
        let seg = spill_segment(&dir, "seg-000000.rel", &schema(), &source, 10..30).unwrap();
        assert_eq!(seg.len(), 20);
        let mut rows = Vec::new();
        seg.for_each_row(&mut |row, nums, bools| rows.push((row, nums[0], bools[0])))
            .unwrap();
        assert_eq!(rows[0], (0, 10.0, false));
        assert_eq!(rows[19], (19, 29.0, false));
        assert!(!dir.join("seg-000000.rel.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn base_stack_scans_like_the_concatenation() {
        let dir = tmp_dir("stack");
        let a = spill_segment(&dir, "a.rel", &schema(), &mem(0..10), 0..10).unwrap();
        let b = spill_segment(&dir, "b.rel", &schema(), &mem(10..25), 0..15).unwrap();
        let stack = BaseStack::new(vec![a, b]).unwrap();
        assert_eq!(stack.len(), 25);
        let flat = mem(0..25);
        let mut seen = Vec::new();
        stack
            .for_each_row(&mut |row, nums, bools| seen.push((row, nums.to_vec(), bools.to_vec())))
            .unwrap();
        let mut want = Vec::new();
        flat.for_each_row(&mut |row, nums, bools| want.push((row, nums.to_vec(), bools.to_vec())))
            .unwrap();
        assert_eq!(seen, want);
        // Partial range across the part boundary.
        let mut xs = Vec::new();
        stack
            .for_each_row_in(8..12, &mut |row, nums, _| xs.push((row, nums[0])))
            .unwrap();
        assert_eq!(xs, vec![(8, 8.0), (9, 9.0), (10, 10.0), (11, 11.0)]);
        // Random access spans parts; out of bounds errors.
        for row in [0u64, 9, 10, 24] {
            assert_eq!(stack.numeric_at(NumAttr(0), row).unwrap(), row as f64);
        }
        assert!(stack.numeric_at(NumAttr(0), 25).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn base_stack_rejects_mismatched_schemas() {
        let dir = tmp_dir("mismatch");
        let a = spill_segment(&dir, "a.rel", &schema(), &mem(0..5), 0..5).unwrap();
        let other = Schema::builder().numeric("Z").build();
        let mut rel = Relation::new(other.clone());
        rel.push_row(&[1.0], &[]).unwrap();
        let b = spill_segment(&dir, "b.rel", &other, &rel, 0..1).unwrap();
        assert!(matches!(
            BaseStack::new(vec![a, b]),
            Err(RelationError::SchemaMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
