//! Scanning traits that decouple algorithms from storage.
//!
//! Every algorithm in the workspace — bucket counting (Algorithm 3.1
//! step 4), parallel counting (Algorithm 3.2), sampling, rule mining —
//! is written against these traits, so it runs unchanged over the
//! in-memory columnar [`crate::memory::Relation`] and the file-backed
//! [`crate::file::FileRelation`].

use crate::columnar::ColumnarScan;
use crate::error::Result;
use crate::schema::{NumAttr, Schema};
use std::ops::Range;

/// Sequential access to a relation's tuples.
///
/// Implementations must be `Sync` so that Algorithm 3.2 can scan
/// disjoint row ranges from multiple threads concurrently (each thread
/// maintains its own cursor/file handle; the trait object itself is
/// only read).
pub trait TupleScan: Sync {
    /// The relation's schema.
    fn schema(&self) -> &Schema;

    /// Number of rows.
    fn len(&self) -> u64;

    /// Whether the relation has no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits rows `range` in order. The callback receives the row index
    /// and the tuple's numeric and Boolean values in schema column
    /// order. Slices are only valid for the duration of the call.
    ///
    /// # Out-of-bounds ranges
    ///
    /// `range.end` is **clamped** to [`len()`](Self::len): a range
    /// reaching past the end visits only the rows that exist, and a
    /// range that is empty or starts at/after `len()` visits nothing.
    /// No implementation may error or panic on an out-of-bounds range —
    /// parallel partitioners (Algorithm 3.2) and snapshot readers hand
    /// out ranges computed from a row count that may have been observed
    /// before or after concurrent appends, and rely on every storage
    /// backend treating the overhang identically.
    ///
    /// # Errors
    ///
    /// Propagates storage errors (I/O for file-backed relations).
    fn for_each_row_in(&self, range: Range<u64>, f: RowVisitor<'_>) -> Result<()>;

    /// Visits every row in order.
    ///
    /// # Errors
    ///
    /// Propagates storage errors (I/O for file-backed relations).
    fn for_each_row(&self, f: RowVisitor<'_>) -> Result<()> {
        self.for_each_row_in(0..self.len(), f)
    }

    /// The relation's columnar fast-path capability, if the storage
    /// supports one (see [`ColumnarScan`]). Algorithms that have a
    /// columnar kernel probe this at runtime and fall back to
    /// [`for_each_row_in`](Self::for_each_row_in) on `None`; the
    /// default is `None`, so generic or wrapper storage keeps working
    /// without opting in.
    fn as_columnar(&self) -> Option<&dyn ColumnarScan> {
        None
    }
}

/// The row callback: `(row index, numeric values, Boolean values)`.
pub type RowVisitor<'a> = &'a mut dyn FnMut(u64, &[f64], &[bool]);

/// Random access to individual numeric values, required by
/// with-replacement sampling (Algorithm 3.1 step 1 draws `S` uniform
/// random tuples).
pub trait RandomAccess: TupleScan {
    /// Reads the value of `attr` at `row`.
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is out of bounds or on I/O failure.
    fn numeric_at(&self, attr: NumAttr, row: u64) -> Result<f64>;
}

// Shared references scan like the relation itself, so session objects
// (e.g. the core crate's `Engine`) can either own a relation or borrow
// one without a separate code path.
impl<T: TupleScan + ?Sized> TupleScan for &T {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }

    fn len(&self) -> u64 {
        (**self).len()
    }

    fn for_each_row_in(&self, range: Range<u64>, f: RowVisitor<'_>) -> Result<()> {
        (**self).for_each_row_in(range, f)
    }

    fn as_columnar(&self) -> Option<&dyn ColumnarScan> {
        (**self).as_columnar()
    }
}

impl<T: RandomAccess + ?Sized> RandomAccess for &T {
    fn numeric_at(&self, attr: NumAttr, row: u64) -> Result<f64> {
        (**self).numeric_at(attr, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Relation;
    use crate::schema::Schema;

    fn small() -> Relation {
        let schema = Schema::builder().numeric("X").boolean("C").build();
        let mut rel = Relation::new(schema);
        for i in 0..10 {
            rel.push_row(&[i as f64], &[i % 2 == 0]).unwrap();
        }
        rel
    }

    #[test]
    fn default_for_each_row_covers_all() {
        let rel = small();
        let mut seen = Vec::new();
        rel.for_each_row(&mut |idx, nums, bools| {
            seen.push((idx, nums[0], bools[0]));
        })
        .unwrap();
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[3], (3, 3.0, false));
    }

    #[test]
    fn is_empty_default() {
        let schema = Schema::builder().numeric("X").build();
        let rel = Relation::new(schema);
        assert!(rel.is_empty());
        assert!(!small().is_empty());
    }
}
