//! Minimal single-attribute generator with one planted range.
//!
//! Used by the Table I reproduction and by property tests: one numeric
//! attribute `A` uniform on `[0, 1)`, one Boolean attribute `C`, and a
//! planted band `[lo, hi)` inside which `P(C) = conf_in` and outside
//! which `P(C) = conf_out`. With `conf_in > conf_out` the optimal
//! confident range at any sufficiently fine granularity is (up to
//! sampling noise) the planted band, whose support is `hi − lo`.
//!
//! The paper's Table I uses an optimal range with support 30 % and
//! confidence 70 %; [`PlantedRangeGenerator::table1`] reproduces exactly
//! that configuration.

use super::DataGenerator;
use crate::schema::Schema;
use rand::Rng;

/// Generator with one planted confident range.
#[derive(Debug, Clone)]
pub struct PlantedRangeGenerator {
    /// Planted band (half-open `[lo, hi)`) in the unit interval.
    pub band: (f64, f64),
    /// P(C = yes) inside the band.
    pub conf_in: f64,
    /// P(C = yes) outside the band.
    pub conf_out: f64,
}

impl PlantedRangeGenerator {
    /// Creates a generator with the given band and confidences.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lo < hi ≤ 1` and both confidences are
    /// probabilities.
    pub fn new(band: (f64, f64), conf_in: f64, conf_out: f64) -> Self {
        assert!(
            0.0 <= band.0 && band.0 < band.1 && band.1 <= 1.0,
            "bad band {band:?}"
        );
        assert!((0.0..=1.0).contains(&conf_in) && (0.0..=1.0).contains(&conf_out));
        Self {
            band,
            conf_in,
            conf_out,
        }
    }

    /// The Table I configuration: the optimal range has support 30 %
    /// (band `[0.35, 0.65)`) and confidence 70 %.
    pub fn table1() -> Self {
        Self::new((0.35, 0.65), 0.70, 0.10)
    }

    /// Expected support of the planted band.
    pub fn band_support(&self) -> f64 {
        self.band.1 - self.band.0
    }
}

impl DataGenerator for PlantedRangeGenerator {
    fn schema(&self) -> Schema {
        Schema::builder().numeric("A").boolean("C").build()
    }

    fn generate(&self, n: u64, seed: u64, sink: &mut dyn FnMut(&[f64], &[bool])) {
        let mut rng = super::rng_for(seed);
        for _ in 0..n {
            let a: f64 = rng.gen();
            let p = if (self.band.0..self.band.1).contains(&a) {
                self.conf_in
            } else {
                self.conf_out
            };
            sink(&[a], &[rng.gen_bool(p)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TupleScan;
    use crate::schema::{BoolAttr, NumAttr};

    #[test]
    fn table1_configuration() {
        let g = PlantedRangeGenerator::table1();
        assert!((g.band_support() - 0.30).abs() < 1e-12);
        assert_eq!(g.conf_in, 0.70);
    }

    #[test]
    fn realized_rates_match_plant() {
        let g = PlantedRangeGenerator::table1();
        let rel = g.to_relation(100_000, 99);
        let (mut n_in, mut c_in, mut n_out, mut c_out) = (0u64, 0u64, 0u64, 0u64);
        for row in 0..rel.len() as usize {
            let a = rel.numeric_value(NumAttr(0), row);
            let c = rel.bool_value(BoolAttr(0), row);
            if (0.35..0.65).contains(&a) {
                n_in += 1;
                c_in += c as u64;
            } else {
                n_out += 1;
                c_out += c as u64;
            }
        }
        let support = n_in as f64 / rel.len() as f64;
        let conf_in = c_in as f64 / n_in as f64;
        let conf_out = c_out as f64 / n_out as f64;
        assert!((support - 0.30).abs() < 0.01, "support {support}");
        assert!((conf_in - 0.70).abs() < 0.01, "conf_in {conf_in}");
        assert!((conf_out - 0.10).abs() < 0.01, "conf_out {conf_out}");
    }

    #[test]
    #[should_panic(expected = "bad band")]
    fn rejects_inverted_band() {
        let _ = PlantedRangeGenerator::new((0.7, 0.3), 0.5, 0.1);
    }
}
