//! Two-attribute generator with a planted confident rectangle.
//!
//! Supports the §1.4 extension: two numeric attributes `X`, `Y` uniform
//! on the unit square and a Boolean `C` whose probability is `conf_in`
//! inside a planted axis-aligned rectangle and `conf_out` outside. The
//! rectangle-region miner should recover the planted block.

use super::DataGenerator;
use crate::schema::Schema;
use rand::Rng;

/// Generator with one planted confident rectangle in the unit square.
#[derive(Debug, Clone)]
pub struct PlantedRectGenerator {
    /// Planted x-interval (half-open).
    pub x_band: (f64, f64),
    /// Planted y-interval (half-open).
    pub y_band: (f64, f64),
    /// P(C) inside the rectangle.
    pub conf_in: f64,
    /// P(C) outside the rectangle.
    pub conf_out: f64,
}

impl PlantedRectGenerator {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics unless both bands are inside `[0, 1]` and non-empty and
    /// the confidences are probabilities.
    pub fn new(x_band: (f64, f64), y_band: (f64, f64), conf_in: f64, conf_out: f64) -> Self {
        for band in [x_band, y_band] {
            assert!(
                0.0 <= band.0 && band.0 < band.1 && band.1 <= 1.0,
                "bad band {band:?}"
            );
        }
        assert!((0.0..=1.0).contains(&conf_in) && (0.0..=1.0).contains(&conf_out));
        Self {
            x_band,
            y_band,
            conf_in,
            conf_out,
        }
    }

    /// Support of the planted rectangle (its area, for uniform data).
    pub fn rect_support(&self) -> f64 {
        (self.x_band.1 - self.x_band.0) * (self.y_band.1 - self.y_band.0)
    }
}

impl Default for PlantedRectGenerator {
    fn default() -> Self {
        // A 0.4 × 0.4 block (16 % support) at 80 % vs 10 % confidence.
        Self::new((0.3, 0.7), (0.2, 0.6), 0.8, 0.1)
    }
}

impl DataGenerator for PlantedRectGenerator {
    fn schema(&self) -> Schema {
        Schema::builder()
            .numeric("X")
            .numeric("Y")
            .boolean("C")
            .build()
    }

    fn generate(&self, n: u64, seed: u64, sink: &mut dyn FnMut(&[f64], &[bool])) {
        let mut rng = super::rng_for(seed);
        for _ in 0..n {
            let x: f64 = rng.gen();
            let y: f64 = rng.gen();
            let inside = (self.x_band.0..self.x_band.1).contains(&x)
                && (self.y_band.0..self.y_band.1).contains(&y);
            let p = if inside { self.conf_in } else { self.conf_out };
            sink(&[x, y], &[rng.gen_bool(p)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TupleScan;
    use crate::schema::{BoolAttr, NumAttr};

    #[test]
    fn planted_rates_hold() {
        let g = PlantedRectGenerator::default();
        let rel = g.to_relation(80_000, 3);
        let (mut n_in, mut c_in, mut n_out, mut c_out) = (0u64, 0u64, 0u64, 0u64);
        for row in 0..rel.len() as usize {
            let x = rel.numeric_value(NumAttr(0), row);
            let y = rel.numeric_value(NumAttr(1), row);
            let c = rel.bool_value(BoolAttr(0), row);
            if (0.3..0.7).contains(&x) && (0.2..0.6).contains(&y) {
                n_in += 1;
                c_in += c as u64;
            } else {
                n_out += 1;
                c_out += c as u64;
            }
        }
        let sup = n_in as f64 / rel.len() as f64;
        assert!((sup - g.rect_support()).abs() < 0.01, "support {sup}");
        assert!((c_in as f64 / n_in as f64 - 0.8).abs() < 0.02);
        assert!((c_out as f64 / n_out as f64 - 0.1).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "bad band")]
    fn rejects_bad_band() {
        let _ = PlantedRectGenerator::new((0.5, 0.4), (0.0, 1.0), 0.5, 0.5);
    }
}
