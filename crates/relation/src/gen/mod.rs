//! Seeded synthetic data generators.
//!
//! The paper evaluates on "randomly generated test data" (§6.1) and
//! motivates the system with bank-customer and retail scenarios (§1, §2,
//! §5). Real customer databases are proprietary, so this module builds
//! the closest synthetic equivalents — crucially, generators **plant**
//! known confident ranges so that integration tests can check mined
//! rules against ground truth, something no real data set allows.
//!
//! All generators are deterministic given a seed, and stream rows so a
//! multi-hundred-megabyte file-backed relation never materializes in
//! memory.

pub mod bank;
pub mod planted;
pub mod planted2d;
pub mod retail;
pub mod uniform;

pub use bank::BankGenerator;
pub use planted::PlantedRangeGenerator;
pub use planted2d::PlantedRectGenerator;
pub use retail::RetailGenerator;
pub use uniform::UniformWorkload;

use crate::error::Result;
use crate::file::{FileRelation, FileRelationWriter};
use crate::memory::Relation;
use crate::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// A deterministic, streaming row generator.
pub trait DataGenerator {
    /// Schema of the generated relation.
    fn schema(&self) -> Schema;

    /// Generates `n` rows, calling `sink` once per row with numeric and
    /// Boolean values in schema column order. Deterministic in `seed`.
    fn generate(&self, n: u64, seed: u64, sink: &mut dyn FnMut(&[f64], &[bool]));

    /// Materializes `n` rows into an in-memory [`Relation`].
    fn to_relation(&self, n: u64, seed: u64) -> Relation {
        let mut rel = Relation::with_capacity(self.schema(), n as usize);
        self.generate(n, seed, &mut |nums, bools| {
            rel.push_row(nums, bools).expect("generator matches schema");
        });
        rel
    }

    /// Streams `n` rows into a file-backed relation at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    fn to_file(&self, path: impl AsRef<Path>, n: u64, seed: u64) -> Result<FileRelation>
    where
        Self: Sized,
    {
        let mut writer = FileRelationWriter::create(path, self.schema())?;
        let mut failed = None;
        self.generate(n, seed, &mut |nums, bools| {
            if failed.is_none() {
                if let Err(e) = writer.push_row(nums, bools) {
                    failed = Some(e);
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        writer.finish()
    }
}

/// Standard normal deviate via Box–Muller (rand's distributions crate is
/// deliberately not a dependency; two lines suffice).
pub(crate) fn normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mu + sigma * z
}

/// Seeded RNG shared by the generators.
pub(crate) fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TupleScan;

    #[test]
    fn generators_are_deterministic() {
        let g = UniformWorkload::paper();
        let a = g.to_relation(500, 42);
        let b = g.to_relation(500, 42);
        let c = g.to_relation(500, 43);
        let col = crate::schema::NumAttr(0);
        assert_eq!(a.numeric_col(col), b.numeric_col(col));
        assert_ne!(a.numeric_col(col), c.numeric_col(col));
    }

    #[test]
    fn to_file_matches_to_relation() {
        let g = UniformWorkload::new(2, 2, (0.0, 10.0), 0.5);
        let mem = g.to_relation(200, 7);
        let path =
            std::env::temp_dir().join(format!("optrules-gen-test-{}.rel", std::process::id()));
        let file = g.to_file(&path, 200, 7).unwrap();
        assert_eq!(file.len(), 200);
        let mut rows_match = true;
        let mut i = 0usize;
        file.for_each_row(&mut |_, nums, bools| {
            for (c, &v) in nums.iter().enumerate() {
                if mem.numeric_value(crate::schema::NumAttr(c), i) != v {
                    rows_match = false;
                }
            }
            for (c, &b) in bools.iter().enumerate() {
                if mem.bool_value(crate::schema::BoolAttr(c), i) != b {
                    rows_match = false;
                }
            }
            i += 1;
        })
        .unwrap();
        assert!(rows_match);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = rng_for(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
