//! Retail-basket scenario with a planted generalized rule.
//!
//! The paper's Section 4.3 extends optimized rules to
//! `(A ∈ [v1, v2]) ∧ C1 ⇒ C2` where `C1`, `C2` are Boolean statements.
//! This generator plants exactly such a pattern:
//!
//! ```text
//! (Amount ∈ [30, 80]) ∧ (Pizza = yes) ⇒ (Potato = yes)
//! ```
//!
//! Among pizza-buying transactions whose basket totals fall in the
//! planted band, potatoes co-occur with probability `potato_in`; in all
//! other transactions the potato rate is the base `potato_base`.

use super::DataGenerator;
use crate::schema::Schema;
use rand::Rng;

/// Generator for retail basket data.
///
/// Numeric attributes: `Amount` (basket total), `Hour` (time of day).
/// Boolean attributes: `Pizza`, `Coke`, `Potato`.
#[derive(Debug, Clone)]
pub struct RetailGenerator {
    /// Planted amount band (inclusive).
    pub amount_band: (f64, f64),
    /// P(Potato | Pizza ∧ Amount ∈ band).
    pub potato_in: f64,
    /// Base potato rate everywhere else.
    pub potato_base: f64,
    /// P(Pizza).
    pub pizza_p: f64,
    /// P(Coke).
    pub coke_p: f64,
    /// Maximum basket amount (uniform over `[0, amount_max]`).
    pub amount_max: f64,
}

impl Default for RetailGenerator {
    fn default() -> Self {
        Self {
            amount_band: (30.0, 80.0),
            potato_in: 0.7,
            potato_base: 0.2,
            pizza_p: 0.3,
            coke_p: 0.4,
            amount_max: 200.0,
        }
    }
}

impl DataGenerator for RetailGenerator {
    fn schema(&self) -> Schema {
        Schema::builder()
            .numeric("Amount")
            .numeric("Hour")
            .boolean("Pizza")
            .boolean("Coke")
            .boolean("Potato")
            .build()
    }

    fn generate(&self, n: u64, seed: u64, sink: &mut dyn FnMut(&[f64], &[bool])) {
        let mut rng = super::rng_for(seed);
        for _ in 0..n {
            let amount = rng.gen_range(0.0..self.amount_max);
            let hour = rng.gen_range(0.0..24.0);
            let pizza = rng.gen_bool(self.pizza_p);
            let coke = rng.gen_bool(self.coke_p);
            let in_band = (self.amount_band.0..=self.amount_band.1).contains(&amount);
            let potato = rng.gen_bool(if pizza && in_band {
                self.potato_in
            } else {
                self.potato_base
            });
            sink(&[amount, hour], &[pizza, coke, potato]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TupleScan;
    use crate::schema::{BoolAttr, NumAttr};

    #[test]
    fn planted_conditional_pattern() {
        let g = RetailGenerator::default();
        let rel = g.to_relation(60_000, 23);
        let (mut band_pizza, mut band_pizza_potato) = (0u64, 0u64);
        let (mut other, mut other_potato) = (0u64, 0u64);
        for row in 0..rel.len() as usize {
            let amount = rel.numeric_value(NumAttr(0), row);
            let pizza = rel.bool_value(BoolAttr(0), row);
            let potato = rel.bool_value(BoolAttr(2), row);
            if pizza && (30.0..=80.0).contains(&amount) {
                band_pizza += 1;
                band_pizza_potato += potato as u64;
            } else {
                other += 1;
                other_potato += potato as u64;
            }
        }
        let conf_in = band_pizza_potato as f64 / band_pizza as f64;
        let conf_out = other_potato as f64 / other as f64;
        assert!((conf_in - 0.7).abs() < 0.03, "conf_in {conf_in}");
        assert!((conf_out - 0.2).abs() < 0.03, "conf_out {conf_out}");
    }

    #[test]
    fn unconditional_potato_rate_is_diluted() {
        // Without the Pizza conjunct the planted band is much weaker —
        // the reason Section 4.3's generalized rules are interesting.
        let g = RetailGenerator::default();
        let rel = g.to_relation(60_000, 29);
        let (mut band, mut band_potato) = (0u64, 0u64);
        for row in 0..rel.len() as usize {
            let amount = rel.numeric_value(NumAttr(0), row);
            if (30.0..=80.0).contains(&amount) {
                band += 1;
                band_potato += rel.bool_value(BoolAttr(2), row) as u64;
            }
        }
        let conf = band_potato as f64 / band as f64;
        // Blend of 30 % pizza-buyers at 0.7 and 70 % at 0.2 ≈ 0.35.
        assert!(
            conf < 0.40,
            "diluted confidence {conf} should be well under 0.7"
        );
        assert!(
            conf > 0.25,
            "diluted confidence {conf} should still beat base"
        );
    }
}
