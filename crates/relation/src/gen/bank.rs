//! Bank-customer scenario with planted rules.
//!
//! Reproduces the paper's running example (Sections 1–2, 5): customers
//! with balances, ages, checking/saving accounts and service flags.
//! Three associations are *planted* so tests can verify mined output:
//!
//! 1. `(Balance ∈ [3000, 8000]) ⇒ (CardLoan = yes)` — the Section 1.1
//!    card-loan rule. Inside the band customers take card loans with
//!    probability `card_loan_in`; outside, `card_loan_out`.
//! 2. `CheckingAccount ∈ [1000, 3000]` marks "excellent customers" whose
//!    `SavingAccount` is drawn from a higher-mean distribution — the
//!    Section 5 maximum-average-range scenario.
//! 3. `(Age ≥ 40) ⇒ (AutoWithdraw = yes)` with elevated probability,
//!    giving the all-pairs miner a second discoverable association.

use super::{normal, DataGenerator};
use crate::schema::Schema;
use rand::Rng;

/// Generator for the bank-customer scenario.
///
/// Numeric attributes: `Balance`, `Age`, `CheckingAccount`,
/// `SavingAccount`. Boolean attributes: `CardLoan`, `AutoWithdraw`,
/// `OnlineBanking`.
#[derive(Debug, Clone)]
pub struct BankGenerator {
    /// Planted balance band for the card-loan rule (inclusive).
    pub balance_band: (f64, f64),
    /// P(CardLoan = yes | Balance ∈ band).
    pub card_loan_in: f64,
    /// P(CardLoan = yes | Balance ∉ band).
    pub card_loan_out: f64,
    /// Planted checking-account band of "excellent customers".
    pub checking_band: (f64, f64),
    /// Mean saving balance inside / outside the checking band.
    pub saving_mean_in: f64,
    /// Mean saving balance for ordinary customers.
    pub saving_mean_out: f64,
    /// Maximum balance (balances are uniform over `[0, balance_max]`).
    pub balance_max: f64,
    /// Maximum checking-account balance (uniform over `[0, checking_max]`).
    pub checking_max: f64,
}

impl Default for BankGenerator {
    fn default() -> Self {
        Self {
            balance_band: (3000.0, 8000.0),
            card_loan_in: 0.65,
            card_loan_out: 0.15,
            checking_band: (1000.0, 3000.0),
            saving_mean_in: 15_000.0,
            saving_mean_out: 5_000.0,
            balance_max: 20_000.0,
            checking_max: 10_000.0,
        }
    }
}

impl BankGenerator {
    /// Expected support of the planted balance band (balances are
    /// uniform over `[0, balance_max]`).
    pub fn planted_card_loan_support(&self) -> f64 {
        (self.balance_band.1 - self.balance_band.0) / self.balance_max
    }

    /// Expected support of the planted checking band.
    pub fn planted_checking_support(&self) -> f64 {
        (self.checking_band.1 - self.checking_band.0) / self.checking_max
    }
}

impl DataGenerator for BankGenerator {
    fn schema(&self) -> Schema {
        Schema::builder()
            .numeric("Balance")
            .numeric("Age")
            .numeric("CheckingAccount")
            .numeric("SavingAccount")
            .boolean("CardLoan")
            .boolean("AutoWithdraw")
            .boolean("OnlineBanking")
            .build()
    }

    fn generate(&self, n: u64, seed: u64, sink: &mut dyn FnMut(&[f64], &[bool])) {
        let mut rng = super::rng_for(seed);
        for _ in 0..n {
            let balance = rng.gen_range(0.0..self.balance_max);
            let age = rng.gen_range(18..=80) as f64;
            let checking = rng.gen_range(0.0..self.checking_max);

            let in_balance_band = (self.balance_band.0..=self.balance_band.1).contains(&balance);
            let card_loan = rng.gen_bool(if in_balance_band {
                self.card_loan_in
            } else {
                self.card_loan_out
            });

            let in_checking_band =
                (self.checking_band.0..=self.checking_band.1).contains(&checking);
            let saving_mean = if in_checking_band {
                self.saving_mean_in
            } else {
                self.saving_mean_out
            };
            let saving = normal(&mut rng, saving_mean, saving_mean * 0.15).max(0.0);

            let auto_withdraw = rng.gen_bool(if age >= 40.0 { 0.7 } else { 0.25 });
            let online = rng.gen_bool(if age <= 35.0 { 0.8 } else { 0.25 });

            sink(
                &[balance, age, checking, saving],
                &[card_loan, auto_withdraw, online],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TupleScan;
    use crate::schema::{BoolAttr, NumAttr};

    #[test]
    fn planted_card_loan_rates() {
        let g = BankGenerator::default();
        let rel = g.to_relation(50_000, 17);
        let (mut in_band, mut in_band_loan, mut out_band, mut out_band_loan) =
            (0u64, 0u64, 0u64, 0u64);
        for row in 0..rel.len() as usize {
            let bal = rel.numeric_value(NumAttr(0), row);
            let loan = rel.bool_value(BoolAttr(0), row);
            if (3000.0..=8000.0).contains(&bal) {
                in_band += 1;
                in_band_loan += loan as u64;
            } else {
                out_band += 1;
                out_band_loan += loan as u64;
            }
        }
        let conf_in = in_band_loan as f64 / in_band as f64;
        let conf_out = out_band_loan as f64 / out_band as f64;
        assert!((conf_in - 0.65).abs() < 0.02, "conf_in {conf_in}");
        assert!((conf_out - 0.15).abs() < 0.02, "conf_out {conf_out}");
        // Planted support ≈ 25 %.
        let support = in_band as f64 / rel.len() as f64;
        assert!((support - g.planted_card_loan_support()).abs() < 0.02);
    }

    #[test]
    fn planted_savings_band_has_higher_average() {
        let g = BankGenerator::default();
        let rel = g.to_relation(20_000, 5);
        let (mut sum_in, mut n_in, mut sum_out, mut n_out) = (0.0, 0u64, 0.0, 0u64);
        for row in 0..rel.len() as usize {
            let checking = rel.numeric_value(NumAttr(2), row);
            let saving = rel.numeric_value(NumAttr(3), row);
            if (1000.0..=3000.0).contains(&checking) {
                sum_in += saving;
                n_in += 1;
            } else {
                sum_out += saving;
                n_out += 1;
            }
        }
        let avg_in = sum_in / n_in as f64;
        let avg_out = sum_out / n_out as f64;
        assert!(
            avg_in > 2.0 * avg_out,
            "planted band average {avg_in} should dwarf {avg_out}"
        );
    }

    #[test]
    fn ages_are_integral_years() {
        let g = BankGenerator::default();
        let rel = g.to_relation(1000, 9);
        for &age in rel.numeric_col(NumAttr(1)) {
            assert_eq!(age, age.trunc());
            assert!((18.0..=80.0).contains(&age));
        }
    }
}
