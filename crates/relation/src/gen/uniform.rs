//! The paper's §6.1 performance workload.
//!
//! "We randomly generated test data with eight numeric attributes and
//! eight Boolean attributes, that is, with 72 bytes per tuple." Values
//! are independent: numerics uniform over a configurable range,
//! Booleans Bernoulli.

use super::DataGenerator;
use crate::schema::Schema;
use rand::Rng;

/// Independent uniform numeric + Bernoulli Boolean workload.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    numeric: usize,
    boolean: usize,
    range: (f64, f64),
    bool_p: f64,
}

impl UniformWorkload {
    /// Creates a workload with `numeric` uniform attributes over
    /// `range` and `boolean` Bernoulli(`bool_p`) attributes.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or `bool_p` is outside `[0, 1]`.
    pub fn new(numeric: usize, boolean: usize, range: (f64, f64), bool_p: f64) -> Self {
        assert!(range.0 < range.1, "empty value range {range:?}");
        assert!((0.0..=1.0).contains(&bool_p));
        Self {
            numeric,
            boolean,
            range,
            bool_p,
        }
    }

    /// The exact §6.1 configuration: 8 numeric + 8 Boolean attributes
    /// (72 bytes/tuple). Numeric values span a wide domain (the paper's
    /// motivating "balance" attribute has millions of distinct values).
    pub fn paper() -> Self {
        Self::new(8, 8, (0.0, 1_000_000.0), 0.5)
    }
}

impl DataGenerator for UniformWorkload {
    fn schema(&self) -> Schema {
        let mut b = Schema::builder();
        for i in 0..self.numeric {
            b = b.numeric(format!("N{i}"));
        }
        for i in 0..self.boolean {
            b = b.boolean(format!("B{i}"));
        }
        b.build()
    }

    fn generate(&self, n: u64, seed: u64, sink: &mut dyn FnMut(&[f64], &[bool])) {
        let mut rng = super::rng_for(seed);
        let mut nums = vec![0.0_f64; self.numeric];
        let mut bools = vec![false; self.boolean];
        for _ in 0..n {
            for v in nums.iter_mut() {
                *v = rng.gen_range(self.range.0..self.range.1);
            }
            for b in bools.iter_mut() {
                *b = rng.gen_bool(self.bool_p);
            }
            sink(&nums, &bools);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TupleScan;
    use crate::schema::{BoolAttr, NumAttr};

    #[test]
    fn paper_workload_schema() {
        let g = UniformWorkload::paper();
        let s = g.schema();
        assert_eq!(s.numeric_count(), 8);
        assert_eq!(s.boolean_count(), 8);
        assert_eq!(s.record_size(), 72);
    }

    #[test]
    fn values_in_range() {
        let g = UniformWorkload::new(2, 1, (-5.0, 5.0), 0.5);
        let rel = g.to_relation(1000, 3);
        assert_eq!(rel.len(), 1000);
        for &v in rel
            .numeric_col(NumAttr(0))
            .iter()
            .chain(rel.numeric_col(NumAttr(1)))
        {
            assert!((-5.0..5.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let g = UniformWorkload::new(1, 1, (0.0, 1.0), 0.25);
        let rel = g.to_relation(20_000, 11);
        let ones = rel.bool_col(BoolAttr(0)).count_ones() as f64;
        let rate = ones / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
