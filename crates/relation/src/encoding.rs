//! Fixed-width record encoding for the file-backed store.
//!
//! Each record is `8·n_num + n_bool` bytes: the numeric attributes as
//! little-endian IEEE-754 doubles followed by one byte (0/1) per Boolean
//! attribute. This matches the paper's §6.1 experiment layout — with
//! 8 numeric + 8 Boolean attributes each tuple occupies exactly 72 bytes.
//!
//! Fixed width keeps the format seekable: record `i` lives at byte
//! offset `header + i · record_size`, which is what lets sampling with
//! replacement (Algorithm 3.1 step 1) and partitioned parallel scans
//! (Algorithm 3.2) address tuples directly.

use crate::error::{RelationError, Result};

/// Layout of one record: attribute counts plus derived byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLayout {
    /// Number of numeric attributes.
    pub numeric_count: usize,
    /// Number of Boolean attributes.
    pub boolean_count: usize,
}

impl RecordLayout {
    /// Layout for a schema with the given attribute counts.
    pub fn new(numeric_count: usize, boolean_count: usize) -> Self {
        Self {
            numeric_count,
            boolean_count,
        }
    }

    /// Total bytes per record.
    pub fn record_size(&self) -> usize {
        8 * self.numeric_count + self.boolean_count
    }

    /// Byte offset of numeric attribute `idx` within a record.
    pub fn numeric_offset(&self, idx: usize) -> usize {
        debug_assert!(idx < self.numeric_count);
        8 * idx
    }

    /// Byte offset of Boolean attribute `idx` within a record.
    pub fn boolean_offset(&self, idx: usize) -> usize {
        debug_assert!(idx < self.boolean_count);
        8 * self.numeric_count + idx
    }

    /// Encodes one row into `out` (appended).
    ///
    /// Validation happens in full before any byte is written, so a
    /// rejected row leaves `out` untouched — the property the WAL
    /// relies on to keep log frame and relation version failing
    /// atomically together.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::SchemaMismatch`] when slice arities do
    /// not match the layout, and [`RelationError::NonFiniteValue`] when
    /// a numeric cell is NaN or infinite (see the ingest-validation
    /// rationale on that variant).
    pub fn encode_row(&self, numeric: &[f64], boolean: &[bool], out: &mut Vec<u8>) -> Result<()> {
        if numeric.len() != self.numeric_count || boolean.len() != self.boolean_count {
            return Err(RelationError::SchemaMismatch {
                expected: format!(
                    "{} numeric + {} boolean",
                    self.numeric_count, self.boolean_count
                ),
                got: format!("{} numeric + {} boolean", numeric.len(), boolean.len()),
            });
        }
        if let Some(column) = numeric.iter().position(|v| !v.is_finite()) {
            return Err(RelationError::NonFiniteValue {
                column,
                value: numeric[column],
            });
        }
        out.reserve(self.record_size());
        for &v in numeric {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &b in boolean {
            out.push(b as u8);
        }
        Ok(())
    }

    /// Decodes one record from `bytes` into the provided buffers
    /// (cleared first). `bytes` must be exactly `record_size()` long.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::SchemaMismatch`] on a short/long slice
    /// and [`RelationError::NonFiniteValue`] when a stored numeric cell
    /// is NaN or infinite — files written by this crate reject such
    /// values at encode time, so this only fires on foreign or
    /// corrupted data, keeping the no-NaN ingest invariant closed at
    /// the file-load edge too.
    pub fn decode_row(
        &self,
        bytes: &[u8],
        numeric: &mut Vec<f64>,
        boolean: &mut Vec<bool>,
    ) -> Result<()> {
        if bytes.len() != self.record_size() {
            return Err(RelationError::SchemaMismatch {
                expected: format!("{} bytes", self.record_size()),
                got: format!("{} bytes", bytes.len()),
            });
        }
        numeric.clear();
        boolean.clear();
        for i in 0..self.numeric_count {
            let off = self.numeric_offset(i);
            let arr: [u8; 8] = bytes[off..off + 8].try_into().expect("8-byte slice");
            let v = f64::from_le_bytes(arr);
            if !v.is_finite() {
                return Err(RelationError::NonFiniteValue {
                    column: i,
                    value: v,
                });
            }
            numeric.push(v);
        }
        for i in 0..self.boolean_count {
            boolean.push(bytes[self.boolean_offset(i)] != 0);
        }
        Ok(())
    }

    /// Decodes only the numeric attribute `idx` from a record slice —
    /// the hot path of bucket-assignment scans, which touch a single
    /// numeric column.
    #[inline]
    pub fn decode_numeric(&self, bytes: &[u8], idx: usize) -> f64 {
        let off = self.numeric_offset(idx);
        let arr: [u8; 8] = bytes[off..off + 8].try_into().expect("8-byte slice");
        f64::from_le_bytes(arr)
    }

    /// Decodes only the Boolean attribute `idx` from a record slice.
    #[inline]
    pub fn decode_boolean(&self, bytes: &[u8], idx: usize) -> bool {
        bytes[self.boolean_offset(idx)] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_is_72_bytes() {
        assert_eq!(RecordLayout::new(8, 8).record_size(), 72);
    }

    #[test]
    fn roundtrip() {
        let layout = RecordLayout::new(3, 2);
        let nums = [1.5, -0.0, f64::MAX];
        let bools = [true, false];
        let mut buf = Vec::new();
        layout.encode_row(&nums, &bools, &mut buf).unwrap();
        assert_eq!(buf.len(), layout.record_size());

        let (mut n, mut b) = (Vec::new(), Vec::new());
        layout.decode_row(&buf, &mut n, &mut b).unwrap();
        assert_eq!(n, nums);
        assert_eq!(b, bools);
    }

    #[test]
    fn single_field_decode_matches_full_decode() {
        let layout = RecordLayout::new(4, 3);
        let nums = [3.25, 1e-300, -7.5, 42.0];
        let bools = [false, true, true];
        let mut buf = Vec::new();
        layout.encode_row(&nums, &bools, &mut buf).unwrap();
        for (i, &v) in nums.iter().enumerate() {
            assert_eq!(layout.decode_numeric(&buf, i), v);
        }
        for (i, &v) in bools.iter().enumerate() {
            assert_eq!(layout.decode_boolean(&buf, i), v);
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let layout = RecordLayout::new(2, 1);
        let mut buf = Vec::new();
        assert!(layout.encode_row(&[1.0], &[true], &mut buf).is_err());
        assert!(layout
            .encode_row(&[1.0, 2.0], &[true, false], &mut buf)
            .is_err());
        let (mut n, mut b) = (Vec::new(), Vec::new());
        assert!(layout.decode_row(&[0u8; 5], &mut n, &mut b).is_err());
    }

    #[test]
    fn non_finite_rejected_both_directions() {
        let layout = RecordLayout::new(2, 0);
        let mut buf = Vec::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match layout.encode_row(&[1.0, bad], &[], &mut buf) {
                Err(RelationError::NonFiniteValue { column: 1, .. }) => {}
                other => panic!("expected NonFiniteValue, got {other:?}"),
            }
            // Nothing written: the WAL depends on all-or-nothing encode.
            assert!(buf.is_empty());
        }
        // A foreign file holding NaN bytes fails at decode.
        let mut raw = Vec::new();
        raw.extend_from_slice(&2.0f64.to_le_bytes());
        raw.extend_from_slice(&f64::NAN.to_le_bytes());
        let (mut n, mut b) = (Vec::new(), Vec::new());
        match layout.decode_row(&raw, &mut n, &mut b) {
            Err(RelationError::NonFiniteValue { column: 1, .. }) => {}
            other => panic!("expected NonFiniteValue, got {other:?}"),
        }
    }

    #[test]
    fn zero_boolean_layout() {
        let layout = RecordLayout::new(1, 0);
        assert_eq!(layout.record_size(), 8);
        let mut buf = Vec::new();
        layout.encode_row(&[9.0], &[], &mut buf).unwrap();
        let (mut n, mut b) = (Vec::new(), Vec::new());
        layout.decode_row(&buf, &mut n, &mut b).unwrap();
        assert_eq!(n, [9.0]);
        assert!(b.is_empty());
    }
}
