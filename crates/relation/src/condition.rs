//! Conditions on tuples (Definition 2.1).
//!
//! Primitive conditions are `A = yes` / `A = no` for a Boolean attribute
//! and `A = v` / `A ∈ [v1, v2]` for a numeric attribute; compound
//! conditions are conjunctions. These appear in two places:
//!
//! * as the **objective** condition `C` of a rule
//!   `(A ∈ [v1, v2]) ⇒ C`, and
//! * as the instantiated Boolean statements `C1`, `C2` of the
//!   generalized rules `(A ∈ [v1, v2]) ∧ C1 ⇒ C2` of Section 4.3.

use crate::schema::{BoolAttr, NumAttr, Schema};

/// A condition on a single tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Always true — the neutral element for conjunction; using it as the
    /// presumptive filter `C1` recovers plain `(A ∈ I) ⇒ C2` rules.
    True,
    /// `A = yes` (`true`) or `A = no` (`false`) for a Boolean attribute.
    BoolIs(BoolAttr, bool),
    /// `A = v` for a numeric attribute (exact equality).
    NumEq(NumAttr, f64),
    /// `A ∈ [lo, hi]` (inclusive on both ends, as in the paper).
    NumInRange(NumAttr, f64, f64),
    /// Conjunction of sub-conditions.
    And(Vec<Condition>),
}

impl Condition {
    /// Evaluates the condition on a tuple given as parallel slices of
    /// numeric and Boolean values (in schema column order).
    ///
    /// # Examples
    ///
    /// ```
    /// use optrules_relation::{Condition, schema::{BoolAttr, NumAttr}};
    /// let c = Condition::And(vec![
    ///     Condition::NumInRange(NumAttr(0), 10.0, 20.0),
    ///     Condition::BoolIs(BoolAttr(0), true),
    /// ]);
    /// assert!(c.eval(&[15.0], &[true]));
    /// assert!(!c.eval(&[15.0], &[false]));
    /// assert!(!c.eval(&[25.0], &[true]));
    /// ```
    pub fn eval(&self, numeric: &[f64], boolean: &[bool]) -> bool {
        match self {
            Self::True => true,
            Self::BoolIs(attr, want) => boolean[attr.0] == *want,
            Self::NumEq(attr, v) => numeric[attr.0] == *v,
            Self::NumInRange(attr, lo, hi) => {
                let x = numeric[attr.0];
                *lo <= x && x <= *hi
            }
            Self::And(parts) => parts.iter().all(|p| p.eval(numeric, boolean)),
        }
    }

    /// Conjunction of two conditions, flattening nested `And`s and
    /// dropping `True`s.
    pub fn and(self, other: Condition) -> Condition {
        let mut parts = Vec::new();
        let mut add = |c: Condition| match c {
            Condition::True => {}
            Condition::And(mut inner) => parts.append(&mut inner),
            other => parts.push(other),
        };
        add(self);
        add(other);
        match parts.len() {
            0 => Condition::True,
            1 => parts.pop().expect("len checked"),
            _ => Condition::And(parts),
        }
    }

    /// Human-readable rendering against a schema (used in rule reports).
    pub fn display(&self, schema: &Schema) -> String {
        match self {
            Self::True => "true".to_string(),
            Self::BoolIs(attr, v) => format!(
                "({} = {})",
                schema.boolean_name(*attr),
                if *v { "yes" } else { "no" }
            ),
            Self::NumEq(attr, v) => format!("({} = {v})", schema.numeric_name(*attr)),
            Self::NumInRange(attr, lo, hi) => {
                format!("({} in [{lo}, {hi}])", schema.numeric_name(*attr))
            }
            Self::And(parts) => parts
                .iter()
                .map(|p| p.display(schema))
                .collect::<Vec<_>>()
                .join(" AND "),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .numeric("Balance")
            .numeric("Age")
            .boolean("CardLoan")
            .boolean("AutoWithdraw")
            .build()
    }

    #[test]
    fn primitives() {
        let nums = [5000.0, 34.0];
        let bools = [true, false];
        assert!(Condition::True.eval(&nums, &bools));
        assert!(Condition::BoolIs(BoolAttr(0), true).eval(&nums, &bools));
        assert!(!Condition::BoolIs(BoolAttr(1), true).eval(&nums, &bools));
        assert!(Condition::NumEq(NumAttr(1), 34.0).eval(&nums, &bools));
        assert!(!Condition::NumEq(NumAttr(1), 35.0).eval(&nums, &bools));
        // Range is inclusive on both ends.
        assert!(Condition::NumInRange(NumAttr(0), 5000.0, 5000.0).eval(&nums, &bools));
        assert!(!Condition::NumInRange(NumAttr(0), 5000.1, 6000.0).eval(&nums, &bools));
    }

    #[test]
    fn conjunction_flattens() {
        let a = Condition::BoolIs(BoolAttr(0), true);
        let b = Condition::NumInRange(NumAttr(0), 0.0, 1.0);
        let c = Condition::True.and(a.clone());
        assert_eq!(c, a);
        let d = a.clone().and(b.clone()).and(Condition::True);
        match &d {
            Condition::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(Condition::True.and(Condition::True), Condition::True);
        // Nested Ands flatten.
        let e = d.clone().and(Condition::NumEq(NumAttr(1), 3.0));
        match &e {
            Condition::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn display_rendering() {
        let s = schema();
        let c = Condition::BoolIs(BoolAttr(0), true).and(Condition::NumInRange(
            NumAttr(0),
            1000.0,
            2000.0,
        ));
        let text = c.display(&s);
        assert!(text.contains("CardLoan = yes"), "{text}");
        assert!(text.contains("Balance in [1000, 2000]"), "{text}");
        assert!(text.contains(" AND "), "{text}");
        assert_eq!(Condition::True.display(&s), "true");
    }
}
