//! Storage substrate for `optrules`.
//!
//! Fukuda et al. evaluate their mining system against "huge databases
//! that occupy much more space than the main memory" (Section 1.3) — the
//! whole motivation for randomized bucketing is that sorting such a
//! relation per numeric attribute is infeasible. This crate provides the
//! pieces of that setting:
//!
//! * [`schema`] — relations with named numeric and Boolean attributes
//!   (Definition 2.1);
//! * [`memory`] — an in-memory columnar [`memory::Relation`] for data
//!   that fits in RAM;
//! * [`chunked`] — copy-on-write relation *versions*
//!   ([`chunked::ChunkedRelation`]): an immutable base store plus
//!   `Arc`-shared frozen segments of appended rows, so producing the
//!   next version after appending `k` rows is O(k) amortized and old
//!   versions stay bit-stable snapshots (the substrate of the engine's
//!   live-relation generations);
//! * [`file`] — a file-backed fixed-width row store
//!   ([`file::FileRelation`]) matching the paper's §6.1 layout (8
//!   numeric and 8 Boolean attributes = 72 bytes/tuple), scanned
//!   sequentially through buffered I/O;
//! * [`scan`] — the [`scan::TupleScan`] / [`scan::RandomAccess`] traits
//!   that bucketing and mining are written against, so every algorithm
//!   runs unchanged on either store;
//! * [`columnar`] — the opt-in [`columnar::ColumnarScan`] fast path:
//!   per-segment contiguous column slices, bit-packed Boolean spans,
//!   and zone maps, discovered at runtime via
//!   [`scan::TupleScan::as_columnar`] and consumed by the counting
//!   kernels in the bucketing crate;
//! * [`durable`] — crash-safe live relations
//!   ([`durable::DurableRelation`]): a checksummed write-ahead log plus
//!   segment spill over [`chunked::ChunkedRelation`], so appended rows
//!   survive `kill -9` and restarts resume at the right generation;
//! * [`condition`] — primitive conditions and conjunctions
//!   (`A = yes`, `A ∈ [v1, v2]`, …) used for presumptive/objective
//!   conditions of rules;
//! * [`gen`] — seeded synthetic data generators: the paper's §6.1
//!   uniform workload, bank-customer and retail-basket scenarios with
//!   *planted* confident ranges so tests can verify mined rules against
//!   known ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitcol;
pub mod chunked;
pub mod columnar;
pub mod condition;
pub mod durable;
pub mod encoding;
pub mod error;
pub mod file;
pub mod gen;
pub mod memory;
pub mod scan;
pub mod schema;

pub use bitcol::{BitColumn, BitSpan};
pub use chunked::{AppendRows, ChunkedRelation, RowFrame};
pub use columnar::{BlockVisitor, ColumnBlock, ColumnarScan};
pub use condition::Condition;
pub use durable::{
    Durability, DurabilityConfig, DurabilityMetrics, DurabilityStats, DurableRelation, Recovery,
    WalSync,
};
pub use error::RelationError;
pub use file::{FileRelation, FileRelationWriter};
pub use memory::Relation;
pub use scan::{RandomAccess, TupleScan};
pub use schema::{BoolAttr, NumAttr, Schema, SchemaBuilder};
