//! Error type shared across the storage substrate.

use std::fmt;
use std::io;

/// Errors produced by relation storage and scanning.
#[derive(Debug)]
pub enum RelationError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A file did not start with the expected magic bytes / version.
    BadHeader(String),
    /// Row data does not match the schema (wrong arity).
    SchemaMismatch {
        /// What the schema expects.
        expected: String,
        /// What the caller supplied.
        got: String,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: u64,
        /// Number of rows in the relation.
        len: u64,
    },
    /// A numeric cell held a NaN or infinite value. Rejected at every
    /// ingest edge because bucket assignment
    /// (`partition_point(|&c| c < x)`) would silently place NaN in
    /// bucket 0 while every range condition evaluates false on it —
    /// the tuple would inflate bucket histograms yet stay invisible to
    /// the rules mined from them.
    NonFiniteValue {
        /// Zero-based numeric column index of the offending cell.
        column: usize,
        /// The rejected value (NaN or ±∞).
        value: f64,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::BadHeader(msg) => write!(f, "bad relation file header: {msg}"),
            Self::SchemaMismatch { expected, got } => {
                write!(f, "schema mismatch: expected {expected}, got {got}")
            }
            Self::UnknownAttribute(name) => write!(f, "unknown attribute: {name:?}"),
            Self::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds (relation has {len} rows)")
            }
            Self::NonFiniteValue { column, value } => {
                write!(
                    f,
                    "non-finite numeric value {value} in column {column} (NaN and ±inf cannot be bucketized)"
                )
            }
        }
    }
}

impl std::error::Error for RelationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RelationError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, RelationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RelationError::UnknownAttribute("Balance".into());
        assert!(e.to_string().contains("Balance"));
        let e = RelationError::RowOutOfBounds { row: 7, len: 3 };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        let e = RelationError::NonFiniteValue {
            column: 2,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("NaN") && e.to_string().contains('2'));
        let e = RelationError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error;
        let e = RelationError::from(io::Error::other("inner"));
        assert!(e.source().is_some());
        let e = RelationError::BadHeader("x".into());
        assert!(e.source().is_none());
    }
}
