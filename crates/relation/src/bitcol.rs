//! Bit-packed Boolean column.
//!
//! The in-memory [`crate::memory::Relation`] stores each Boolean
//! attribute as one bit per row. With the paper's workloads (millions of
//! rows × 8 Boolean attributes) this is an 8× space saving over `Vec<bool>`
//! and keeps the counting scans cache-friendly.

/// A growable bit vector specialized for append + random read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitColumn {
    words: Vec<u64>,
    len: usize,
}

impl BitColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty column with capacity for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of bounds ({})",
            self.len
        );
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The backing 64-bit words (bit `i` lives at
    /// `words()[i / 64] >> (i % 64)`); bits past `len()` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Removes all bits, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// A borrowed view of the bits in `range`, supporting word-wise
    /// counting — the unit Boolean columns travel as in columnar scan
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds or decreasing.
    pub fn span(&self, range: std::ops::Range<usize>) -> BitSpan<'_> {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "bit range {range:?} out of bounds ({})",
            self.len
        );
        BitSpan {
            words: &self.words,
            start: range.start,
            len: range.end - range.start,
        }
    }
}

/// A borrowed range of bits inside a [`BitColumn`], addressed by a bit
/// offset into the shared word array. Supports O(words) masked
/// popcounts (`u64::count_ones` per word) so counting kernels never
/// touch bits one at a time.
#[derive(Debug, Clone, Copy)]
pub struct BitSpan<'a> {
    words: &'a [u64],
    /// Bit offset of the span's first bit within `words`.
    start: usize,
    len: usize,
}

impl BitSpan<'_> {
    /// Number of bits in the span.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the span holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `idx` of the span (0-based within the span).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of bounds ({})",
            self.len
        );
        let bit = self.start + idx;
        (self.words[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Repacks the span into offset-0 words in `out` (bit `i` of the
    /// span readable as `out[i / 64] >> (i % 64) & 1`), reusing the
    /// allocation; bits of the last word at positions `len()..` are
    /// zero. Counting kernels repack once per block so the per-row bit
    /// read is one shift off a local slice instead of offset
    /// arithmetic through the span.
    pub fn repack_into(&self, out: &mut Vec<u64>) {
        out.clear();
        if self.len == 0 {
            return;
        }
        let nwords = self.len.div_ceil(64);
        let first = self.start / 64;
        let shift = self.start % 64;
        if shift == 0 {
            out.extend_from_slice(&self.words[first..first + nwords]);
        } else {
            out.reserve(nwords);
            for k in 0..nwords {
                let lo = self.words[first + k] >> shift;
                let hi = match self.words.get(first + k + 1) {
                    Some(&w) => w << (64 - shift),
                    None => 0,
                };
                out.push(lo | hi);
            }
        }
        let tail = self.len % 64;
        if tail != 0 {
            let last = out.len() - 1;
            out[last] &= (1u64 << tail) - 1;
        }
    }

    /// Number of set bits, via masked word-wise `u64::count_ones`: the
    /// partial head and tail words are masked, every full word in
    /// between is popcounted whole.
    pub fn count_ones(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        let lo = self.start;
        let hi = self.start + self.len; // exclusive
        let first = lo / 64;
        let last = (hi - 1) / 64;
        if first == last {
            // Mask bit positions lo%64 .. lo%64 + len within one word.
            let bits = self.words[first] >> (lo % 64);
            let masked = if self.len == 64 {
                bits
            } else {
                bits & ((1u64 << self.len) - 1)
            };
            return masked.count_ones() as usize;
        }
        let mut total = (self.words[first] >> (lo % 64)).count_ones() as usize;
        for w in &self.words[first + 1..last] {
            total += w.count_ones() as usize;
        }
        let tail_bits = hi - last * 64; // 1..=64
        let tail_mask = if tail_bits == 64 {
            !0u64
        } else {
            (1u64 << tail_bits) - 1
        };
        total + (self.words[last] & tail_mask).count_ones() as usize
    }
}

impl FromIterator<bool> for BitColumn {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut col = Self::new();
        for b in iter {
            col.push(b);
        }
        col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let col: BitColumn = pattern.iter().copied().collect();
        assert_eq!(col.len(), 200);
        for (i, &want) in pattern.iter().enumerate() {
            assert_eq!(col.get(i), want, "bit {i}");
        }
    }

    #[test]
    fn count_ones_matches_iter() {
        let col: BitColumn = (0..1000).map(|i| i % 5 == 0).collect();
        assert_eq!(col.count_ones(), 200);
        assert_eq!(col.iter().filter(|&b| b).count(), 200);
    }

    #[test]
    fn word_boundaries() {
        // Exactly 64 and 65 bits exercise the word-spill path.
        let mut col = BitColumn::new();
        for _ in 0..64 {
            col.push(true);
        }
        assert_eq!(col.count_ones(), 64);
        col.push(false);
        col.push(true);
        assert_eq!(col.len(), 66);
        assert!(!col.get(64));
        assert!(col.get(65));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let col = BitColumn::new();
        let _ = col.get(0);
    }

    #[test]
    fn empty() {
        let col = BitColumn::new();
        assert!(col.is_empty());
        assert_eq!(col.count_ones(), 0);
        assert_eq!(col.iter().count(), 0);
    }

    #[test]
    fn span_count_matches_bitwise_oracle_at_every_offset() {
        // 200 bits cross three words; try every (start, len) pair so
        // head/tail masks, single-word, and full-word paths all fire.
        let pattern: Vec<bool> = (0..200).map(|i| (i * 7 + i / 13) % 3 == 0).collect();
        let col: BitColumn = pattern.iter().copied().collect();
        for start in (0..200).step_by(7) {
            for end in (start..=200).step_by(11) {
                let want = pattern[start..end].iter().filter(|&&b| b).count();
                let span = col.span(start..end);
                assert_eq!(span.count_ones(), want, "span {start}..{end}");
                assert_eq!(span.len(), end - start);
                for (i, &bit) in pattern[start..end].iter().enumerate() {
                    assert_eq!(span.get(i), bit, "span {start}..{end} bit {i}");
                }
            }
        }
    }

    #[test]
    fn repack_matches_get_at_every_offset() {
        // Spans at every shift cross the aligned fast path, the
        // shift-combine path, and the tail mask.
        let pattern: Vec<bool> = (0..200).map(|i| (i * 11 + i / 7) % 3 == 0).collect();
        let col: BitColumn = pattern.iter().copied().collect();
        let mut out = Vec::new();
        for start in (0..200).step_by(3) {
            for end in (start..=200).step_by(13) {
                let span = col.span(start..end);
                span.repack_into(&mut out);
                assert_eq!(out.len(), (end - start).div_ceil(64), "span {start}..{end}");
                for (i, &bit) in pattern[start..end].iter().enumerate() {
                    assert_eq!(
                        (out[i / 64] >> (i % 64)) & 1 == 1,
                        bit,
                        "span {start}..{end} bit {i}"
                    );
                }
                if let Some(&last) = out.last() {
                    let tail = (end - start) % 64;
                    if tail != 0 {
                        assert_eq!(last >> tail, 0, "span {start}..{end}: tail not zeroed");
                    }
                }
            }
        }
    }

    #[test]
    fn span_word_aligned_edges() {
        let col: BitColumn = (0..192).map(|_| true).collect();
        assert_eq!(col.span(0..64).count_ones(), 64);
        assert_eq!(col.span(64..128).count_ones(), 64);
        assert_eq!(col.span(0..192).count_ones(), 192);
        assert_eq!(col.span(63..65).count_ones(), 2);
        assert!(col.span(5..5).is_empty());
        assert_eq!(col.span(5..5).count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn span_out_of_bounds_panics() {
        let col: BitColumn = (0..10).map(|_| false).collect();
        let _ = col.span(5..11);
    }

    #[test]
    fn clear_resets_and_keeps_working() {
        let mut col: BitColumn = (0..100).map(|i| i % 2 == 0).collect();
        col.clear();
        assert!(col.is_empty());
        assert_eq!(col.words().len(), 0);
        col.push(true);
        assert_eq!(col.count_ones(), 1);
    }
}
