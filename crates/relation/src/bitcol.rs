//! Bit-packed Boolean column.
//!
//! The in-memory [`crate::memory::Relation`] stores each Boolean
//! attribute as one bit per row. With the paper's workloads (millions of
//! rows × 8 Boolean attributes) this is an 8× space saving over `Vec<bool>`
//! and keeps the counting scans cache-friendly.

/// A growable bit vector specialized for append + random read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitColumn {
    words: Vec<u64>,
    len: usize,
}

impl BitColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty column with capacity for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of bounds ({})",
            self.len
        );
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl FromIterator<bool> for BitColumn {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut col = Self::new();
        for b in iter {
            col.push(b);
        }
        col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let col: BitColumn = pattern.iter().copied().collect();
        assert_eq!(col.len(), 200);
        for (i, &want) in pattern.iter().enumerate() {
            assert_eq!(col.get(i), want, "bit {i}");
        }
    }

    #[test]
    fn count_ones_matches_iter() {
        let col: BitColumn = (0..1000).map(|i| i % 5 == 0).collect();
        assert_eq!(col.count_ones(), 200);
        assert_eq!(col.iter().filter(|&b| b).count(), 200);
    }

    #[test]
    fn word_boundaries() {
        // Exactly 64 and 65 bits exercise the word-spill path.
        let mut col = BitColumn::new();
        for _ in 0..64 {
            col.push(true);
        }
        assert_eq!(col.count_ones(), 64);
        col.push(false);
        col.push(true);
        assert_eq!(col.len(), 66);
        assert!(!col.get(64));
        assert!(col.get(65));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let col = BitColumn::new();
        let _ = col.get(0);
    }

    #[test]
    fn empty() {
        let col = BitColumn::new();
        assert!(col.is_empty());
        assert_eq!(col.count_ones(), 0);
        assert_eq!(col.iter().count(), 0);
    }
}
