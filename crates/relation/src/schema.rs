//! Relation schemas: named numeric and Boolean attributes.
//!
//! Mirrors Definition 2.1 of the paper: a relation has Boolean attributes
//! (domain `{yes, no}`) and numeric attributes (totally ordered values;
//! we use `f64`). Attributes are addressed through the typed handles
//! [`NumAttr`] / [`BoolAttr`] so a numeric index can never be used to
//! read a Boolean column by mistake.

use crate::error::{RelationError, Result};

/// Typed handle for a numeric attribute (index into the numeric columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NumAttr(pub usize);

/// Typed handle for a Boolean attribute (index into the Boolean columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoolAttr(pub usize);

/// A relation schema: ordered lists of numeric and Boolean attribute
/// names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    numeric: Vec<String>,
    boolean: Vec<String>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Number of numeric attributes.
    pub fn numeric_count(&self) -> usize {
        self.numeric.len()
    }

    /// Number of Boolean attributes.
    pub fn boolean_count(&self) -> usize {
        self.boolean.len()
    }

    /// Names of the numeric attributes, in column order.
    pub fn numeric_names(&self) -> &[String] {
        &self.numeric
    }

    /// Names of the Boolean attributes, in column order.
    pub fn boolean_names(&self) -> &[String] {
        &self.boolean
    }

    /// All numeric attribute handles, in column order.
    pub fn numeric_attrs(&self) -> impl Iterator<Item = NumAttr> + '_ {
        (0..self.numeric.len()).map(NumAttr)
    }

    /// All Boolean attribute handles, in column order.
    pub fn boolean_attrs(&self) -> impl Iterator<Item = BoolAttr> + '_ {
        (0..self.boolean.len()).map(BoolAttr)
    }

    /// Looks up a numeric attribute by name.
    pub fn numeric(&self, name: &str) -> Result<NumAttr> {
        self.numeric
            .iter()
            .position(|n| n == name)
            .map(NumAttr)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))
    }

    /// Looks up a Boolean attribute by name.
    pub fn boolean(&self, name: &str) -> Result<BoolAttr> {
        self.boolean
            .iter()
            .position(|n| n == name)
            .map(BoolAttr)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))
    }

    /// Name of a numeric attribute.
    pub fn numeric_name(&self, attr: NumAttr) -> &str {
        &self.numeric[attr.0]
    }

    /// Name of a Boolean attribute.
    pub fn boolean_name(&self, attr: BoolAttr) -> &str {
        &self.boolean[attr.0]
    }

    /// Size in bytes of one encoded record: 8 bytes per numeric value
    /// plus 1 byte per Boolean value.
    ///
    /// With the paper's §6.1 workload (8 numeric + 8 Boolean) this is
    /// exactly the 72 bytes/tuple the authors report.
    pub fn record_size(&self) -> usize {
        8 * self.numeric.len() + self.boolean.len()
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Default, Clone)]
pub struct SchemaBuilder {
    numeric: Vec<String>,
    boolean: Vec<String>,
}

impl SchemaBuilder {
    /// Adds a numeric attribute.
    ///
    /// # Panics
    ///
    /// Panics if the name duplicates an existing attribute of either
    /// kind — duplicated names would make name lookups ambiguous.
    pub fn numeric(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            !self.numeric.contains(&name) && !self.boolean.contains(&name),
            "duplicate attribute name {name:?}"
        );
        self.numeric.push(name);
        self
    }

    /// Adds a Boolean attribute.
    ///
    /// # Panics
    ///
    /// Panics if the name duplicates an existing attribute of either kind.
    pub fn boolean(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            !self.numeric.contains(&name) && !self.boolean.contains(&name),
            "duplicate attribute name {name:?}"
        );
        self.boolean.push(name);
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> Schema {
        Schema {
            numeric: self.numeric,
            boolean: self.boolean,
        }
    }
}

/// Schema of the paper's §6.1 performance workload: eight numeric and
/// eight Boolean attributes, 72 bytes per tuple.
pub fn paper_schema() -> Schema {
    let mut b = Schema::builder();
    for i in 0..8 {
        b = b.numeric(format!("N{i}"));
    }
    for i in 0..8 {
        b = b.boolean(format!("B{i}"));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::builder()
            .numeric("Balance")
            .numeric("Age")
            .boolean("CardLoan")
            .build();
        assert_eq!(s.numeric_count(), 2);
        assert_eq!(s.boolean_count(), 1);
        assert_eq!(s.numeric("Age").unwrap(), NumAttr(1));
        assert_eq!(s.boolean("CardLoan").unwrap(), BoolAttr(0));
        assert!(s.numeric("CardLoan").is_err());
        assert!(s.boolean("Balance").is_err());
        assert_eq!(s.numeric_name(NumAttr(0)), "Balance");
        assert_eq!(s.boolean_name(BoolAttr(0)), "CardLoan");
    }

    #[test]
    fn record_size_matches_paper() {
        assert_eq!(paper_schema().record_size(), 72);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        let _ = Schema::builder().numeric("A").boolean("A");
    }

    #[test]
    fn attr_iterators() {
        let s = paper_schema();
        assert_eq!(s.numeric_attrs().count(), 8);
        assert_eq!(s.boolean_attrs().count(), 8);
        assert_eq!(s.numeric_attrs().next(), Some(NumAttr(0)));
    }
}
