//! In-memory columnar relation.
//!
//! Numeric attributes are stored as `Vec<f64>` columns and Boolean
//! attributes as bit-packed [`BitColumn`]s. Columnar layout makes the
//! two operations the mining pipeline cares about fast: scanning one
//! numeric column (bucket assignment) and testing one Boolean column
//! (objective-condition counting).

use crate::bitcol::BitColumn;
use crate::columnar::{BlockVisitor, ColumnBlock, ColumnarScan};
use crate::error::{RelationError, Result};
use crate::scan::{RandomAccess, TupleScan};
use crate::schema::{BoolAttr, NumAttr, Schema};
use std::ops::Range;

/// An in-memory columnar relation.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    numeric_cols: Vec<Vec<f64>>,
    bool_cols: Vec<BitColumn>,
    /// Per-numeric-column `(min, max)` over all rows, maintained on
    /// append — the relation's zone map. `(∞, −∞)` while empty.
    zones: Vec<(f64, f64)>,
    rows: u64,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        let numeric_cols = (0..schema.numeric_count()).map(|_| Vec::new()).collect();
        let bool_cols = (0..schema.boolean_count())
            .map(|_| BitColumn::new())
            .collect();
        let zones = vec![(f64::INFINITY, f64::NEG_INFINITY); schema.numeric_count()];
        Self {
            schema,
            numeric_cols,
            bool_cols,
            zones,
            rows: 0,
        }
    }

    /// Creates an empty relation with row capacity pre-reserved.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let numeric_cols = (0..schema.numeric_count())
            .map(|_| Vec::with_capacity(rows))
            .collect();
        let bool_cols = (0..schema.boolean_count())
            .map(|_| BitColumn::with_capacity(rows))
            .collect();
        let zones = vec![(f64::INFINITY, f64::NEG_INFINITY); schema.numeric_count()];
        Self {
            schema,
            numeric_cols,
            bool_cols,
            zones,
            rows: 0,
        }
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::SchemaMismatch`] if the slice arities do
    /// not match the schema, and [`RelationError::NonFiniteValue`] if a
    /// numeric cell is NaN or infinite (see that variant for why such
    /// values can never be allowed to reach bucket assignment). On any
    /// error nothing is appended.
    pub fn push_row(&mut self, numeric: &[f64], boolean: &[bool]) -> Result<()> {
        if numeric.len() != self.schema.numeric_count()
            || boolean.len() != self.schema.boolean_count()
        {
            return Err(RelationError::SchemaMismatch {
                expected: format!(
                    "{} numeric + {} boolean",
                    self.schema.numeric_count(),
                    self.schema.boolean_count()
                ),
                got: format!("{} numeric + {} boolean", numeric.len(), boolean.len()),
            });
        }
        if let Some(column) = numeric.iter().position(|v| !v.is_finite()) {
            return Err(RelationError::NonFiniteValue {
                column,
                value: numeric[column],
            });
        }
        for ((col, zone), &v) in self
            .numeric_cols
            .iter_mut()
            .zip(&mut self.zones)
            .zip(numeric)
        {
            col.push(v);
            zone.0 = zone.0.min(v);
            zone.1 = zone.1.max(v);
        }
        for (col, &b) in self.bool_cols.iter_mut().zip(boolean) {
            col.push(b);
        }
        self.rows += 1;
        Ok(())
    }

    /// The zone map: per-numeric-column `(min, max)` over all rows,
    /// `(∞, −∞)` while the relation is empty.
    pub fn zones(&self) -> &[(f64, f64)] {
        &self.zones
    }

    /// Read-only view of a numeric column.
    pub fn numeric_col(&self, attr: NumAttr) -> &[f64] {
        &self.numeric_cols[attr.0]
    }

    /// Read-only view of a Boolean column.
    pub fn bool_col(&self, attr: BoolAttr) -> &BitColumn {
        &self.bool_cols[attr.0]
    }

    /// Value of one numeric cell.
    pub fn numeric_value(&self, attr: NumAttr, row: usize) -> f64 {
        self.numeric_cols[attr.0][row]
    }

    /// Value of one Boolean cell.
    pub fn bool_value(&self, attr: BoolAttr, row: usize) -> bool {
        self.bool_cols[attr.0].get(row)
    }
}

impl TupleScan for Relation {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn len(&self) -> u64 {
        self.rows
    }

    fn for_each_row_in(
        &self,
        range: Range<u64>,
        f: &mut dyn FnMut(u64, &[f64], &[bool]),
    ) -> Result<()> {
        let end = range.end.min(self.rows);
        let mut nums = vec![0.0_f64; self.schema.numeric_count()];
        let mut bools = vec![false; self.schema.boolean_count()];
        for row in range.start..end {
            let r = row as usize;
            for (slot, col) in nums.iter_mut().zip(&self.numeric_cols) {
                *slot = col[r];
            }
            for (slot, col) in bools.iter_mut().zip(&self.bool_cols) {
                *slot = col.get(r);
            }
            f(row, &nums, &bools);
        }
        Ok(())
    }

    fn as_columnar(&self) -> Option<&dyn ColumnarScan> {
        Some(self)
    }
}

impl ColumnarScan for Relation {
    /// The whole requested range as a single block borrowing the
    /// column storage directly — zero copying. The block's zones are
    /// the relation-wide zone map, a valid (if loose, for partial
    /// ranges) bound on any subrange.
    fn for_each_block_in(&self, range: Range<u64>, f: BlockVisitor<'_>) -> Result<()> {
        let end = range.end.min(self.rows);
        if range.start >= end {
            return Ok(());
        }
        let (lo, hi) = (range.start as usize, end as usize);
        let block = ColumnBlock {
            start: range.start,
            rows: hi - lo,
            numeric: self.numeric_cols.iter().map(|c| &c[lo..hi]).collect(),
            bits: self.bool_cols.iter().map(|c| c.span(lo..hi)).collect(),
            zones: self.zones.clone(),
        };
        f(&block);
        Ok(())
    }
}

impl RandomAccess for Relation {
    fn numeric_at(&self, attr: NumAttr, row: u64) -> Result<f64> {
        if row >= self.rows {
            return Err(RelationError::RowOutOfBounds {
                row,
                len: self.rows,
            });
        }
        Ok(self.numeric_cols[attr.0][row as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let schema = Schema::builder()
            .numeric("Balance")
            .numeric("Age")
            .boolean("CardLoan")
            .build();
        let mut rel = Relation::new(schema);
        rel.push_row(&[1000.0, 30.0], &[true]).unwrap();
        rel.push_row(&[2000.0, 40.0], &[false]).unwrap();
        rel.push_row(&[1500.0, 50.0], &[true]).unwrap();
        rel
    }

    #[test]
    fn columnar_access() {
        let rel = sample();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.numeric_col(NumAttr(0)), &[1000.0, 2000.0, 1500.0]);
        assert_eq!(rel.numeric_col(NumAttr(1)), &[30.0, 40.0, 50.0]);
        assert_eq!(rel.bool_col(BoolAttr(0)).count_ones(), 2);
        assert_eq!(rel.numeric_value(NumAttr(1), 2), 50.0);
        assert!(rel.bool_value(BoolAttr(0), 0));
    }

    #[test]
    fn arity_checked() {
        let mut rel = sample();
        assert!(rel.push_row(&[1.0], &[true]).is_err());
        assert!(rel.push_row(&[1.0, 2.0], &[]).is_err());
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn scan_range() {
        let rel = sample();
        let mut rows = Vec::new();
        rel.for_each_row_in(1..3, &mut |idx, nums, bools| {
            rows.push((idx, nums.to_vec(), bools.to_vec()));
        })
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[0].1, vec![2000.0, 40.0]);
        assert_eq!(rows[1].2, vec![true]);
    }

    #[test]
    fn scan_range_clamps_to_len() {
        let rel = sample();
        let mut count = 0;
        rel.for_each_row_in(2..100, &mut |_, _, _| count += 1)
            .unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn random_access_bounds() {
        let rel = sample();
        assert_eq!(rel.numeric_at(NumAttr(0), 1).unwrap(), 2000.0);
        assert!(rel.numeric_at(NumAttr(0), 3).is_err());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let schema = Schema::builder().numeric("X").boolean("B").build();
        let mut rel = Relation::with_capacity(schema, 100);
        assert!(rel.is_empty());
        rel.push_row(&[1.0], &[false]).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn zones_track_min_max_per_column() {
        let rel = sample();
        assert_eq!(rel.zones(), &[(1000.0, 2000.0), (30.0, 50.0)]);
        let empty = Relation::new(Schema::builder().numeric("X").build());
        assert_eq!(empty.zones(), &[(f64::INFINITY, f64::NEG_INFINITY)]);
    }

    #[test]
    fn non_finite_row_rejected_and_nothing_applied() {
        let mut rel = sample();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match rel.push_row(&[bad, 60.0], &[true]) {
                Err(RelationError::NonFiniteValue { column: 0, .. }) => {}
                other => panic!("expected NonFiniteValue, got {other:?}"),
            }
            match rel.push_row(&[3000.0, bad], &[true]) {
                Err(RelationError::NonFiniteValue { column: 1, .. }) => {}
                other => panic!("expected NonFiniteValue, got {other:?}"),
            }
        }
        // Nothing appended, zones untouched.
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.numeric_col(NumAttr(0)).len(), 3);
        assert_eq!(rel.zones(), &[(1000.0, 2000.0), (30.0, 50.0)]);
    }
}
