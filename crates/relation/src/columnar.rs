//! Columnar scan capability: per-segment access to contiguous column
//! data, the substrate of the counting-scan kernels.
//!
//! The row-visitor path ([`crate::scan::TupleScan::for_each_row_in`])
//! copies every tuple into scratch buffers and pays one dyn-closure
//! call per row — fine for generic algorithms, ruinous for the one
//! scan all mining cost bottoms out in (Algorithm 3.1 step 4).
//! [`ColumnarScan`] exposes what that scan actually needs: the rows of
//! each storage segment as contiguous `&[f64]` column slices plus
//! bit-packed Boolean columns ([`BitSpan`]), delivered block by block
//! in row order, with per-block **zone maps** (min/max per numeric
//! column) so a kernel can skip blocks that provably cannot satisfy a
//! range condition and collapse blocks whose values all fall in one
//! bucket.
//!
//! Storage opts in by overriding
//! [`TupleScan::as_columnar`](crate::scan::TupleScan::as_columnar):
//! the in-memory [`Relation`](crate::memory::Relation) hands out its
//! columns directly, the file-backed
//! [`FileRelation`](crate::file::FileRelation) decodes fixed-width
//! records into column buffers a few thousand rows at a time, and
//! composite stores ([`ChunkedRelation`](crate::chunked::ChunkedRelation),
//! the durable segment stack) forward per segment. Algorithms discover
//! the capability at runtime and fall back to the row visitor when it
//! is absent, so everything keeps working over generic storage.

use crate::bitcol::BitSpan;
use crate::error::Result;
use std::ops::Range;

/// One block of rows viewed column-wise. Blocks are produced in row
/// order and partition the scanned range; `start` is the global row
/// index of the block's first row.
///
/// `zones` holds a per-numeric-column `(min, max)` over **at least**
/// the block's rows: implementations may report a looser bound (e.g. a
/// whole-segment zone for a partial block), so consumers may use zones
/// to prove values absent, never to prove them present.
#[derive(Debug, Clone)]
pub struct ColumnBlock<'a> {
    /// Global row index of the first row in this block.
    pub start: u64,
    /// Number of rows in the block.
    pub rows: usize,
    /// One contiguous slice per numeric attribute (schema column
    /// order), each exactly `rows` long.
    pub numeric: Vec<&'a [f64]>,
    /// One bit span per Boolean attribute (schema column order), each
    /// exactly `rows` bits long.
    pub bits: Vec<BitSpan<'a>>,
    /// Per-numeric-column `(min, max)` bounding the block's values
    /// (possibly loosely — see the type docs). `(∞, −∞)` when the
    /// bound is over zero rows.
    pub zones: Vec<(f64, f64)>,
}

impl<'a> ColumnBlock<'a> {
    /// The same block re-addressed to a new global start row — how
    /// composite stores translate a segment-local block into the
    /// containing relation's row space.
    pub fn rebased(&self, start: u64) -> ColumnBlock<'a> {
        ColumnBlock {
            start,
            ..self.clone()
        }
    }
}

/// The block callback of [`ColumnarScan::for_each_block_in`].
pub type BlockVisitor<'a> = &'a mut dyn FnMut(&ColumnBlock<'_>);

/// Sequential column-wise access to a relation's tuples, block by
/// block. See the [module docs](self) for the role this plays.
pub trait ColumnarScan: Sync {
    /// Visits rows `range` as consecutive [`ColumnBlock`]s in row
    /// order. Clamps exactly like
    /// [`TupleScan::for_each_row_in`](crate::scan::TupleScan::for_each_row_in):
    /// `range.end` is clamped to the row count and an empty or fully
    /// out-of-bounds range visits nothing — a columnar scan over any
    /// range covers precisely the rows the row visitor would.
    ///
    /// Blocks never contain zero rows.
    ///
    /// # Errors
    ///
    /// Propagates storage errors (I/O and corrupt or non-finite data
    /// for file-backed relations).
    fn for_each_block_in(&self, range: Range<u64>, f: BlockVisitor<'_>) -> Result<()>;
}

impl<T: ColumnarScan + ?Sized> ColumnarScan for &T {
    fn for_each_block_in(&self, range: Range<u64>, f: BlockVisitor<'_>) -> Result<()> {
        (**self).for_each_block_in(range, f)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::memory::Relation;
    use crate::scan::TupleScan;
    use crate::schema::Schema;

    fn sample(rows: usize) -> Relation {
        let schema = Schema::builder()
            .numeric("X")
            .numeric("Y")
            .boolean("B")
            .build();
        let mut rel = Relation::new(schema);
        for i in 0..rows {
            rel.push_row(&[i as f64, -(i as f64)], &[i % 3 == 0])
                .unwrap();
        }
        rel
    }

    /// Reconstructs rows from blocks and checks them against the
    /// row-visitor oracle — the contract every implementor must hold.
    pub(crate) fn assert_blocks_match_visitor<T: TupleScan + ?Sized>(rel: &T, range: Range<u64>) {
        let cols = rel
            .as_columnar()
            .expect("relation under test must support columnar scans");
        let mut from_blocks: Vec<(u64, Vec<f64>, Vec<bool>)> = Vec::new();
        cols.for_each_block_in(range.clone(), &mut |block| {
            assert!(block.rows > 0, "empty block emitted");
            assert_eq!(block.numeric.len(), rel.schema().numeric_count());
            assert_eq!(block.bits.len(), rel.schema().boolean_count());
            assert_eq!(block.zones.len(), rel.schema().numeric_count());
            for (col, slice) in block.numeric.iter().enumerate() {
                assert_eq!(slice.len(), block.rows);
                let (lo, hi) = block.zones[col];
                for &x in *slice {
                    assert!(lo <= x && x <= hi, "zone ({lo}, {hi}) misses {x}");
                }
            }
            for bits in &block.bits {
                assert_eq!(bits.len(), block.rows);
            }
            for i in 0..block.rows {
                from_blocks.push((
                    block.start + i as u64,
                    block.numeric.iter().map(|c| c[i]).collect(),
                    block.bits.iter().map(|b| b.get(i)).collect(),
                ));
            }
        })
        .unwrap();
        let mut from_rows: Vec<(u64, Vec<f64>, Vec<bool>)> = Vec::new();
        rel.for_each_row_in(range, &mut |row, nums, bools| {
            from_rows.push((row, nums.to_vec(), bools.to_vec()));
        })
        .unwrap();
        assert_eq!(from_blocks.len(), from_rows.len());
        for (a, b) in from_blocks.iter().zip(&from_rows) {
            assert_eq!(a.0, b.0);
            assert_eq!(
                a.1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.1.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(a.2, b.2);
        }
    }

    #[test]
    fn memory_blocks_match_visitor() {
        let rel = sample(100);
        assert_blocks_match_visitor(&rel, 0..100);
        assert_blocks_match_visitor(&rel, 17..63);
        // Clamp semantics match the row visitor.
        assert_blocks_match_visitor(&rel, 90..1000);
        assert_blocks_match_visitor(&rel, 100..200);
        assert_blocks_match_visitor(&rel, 0..0);
    }

    #[test]
    fn rebased_moves_only_the_start() {
        let rel = sample(10);
        rel.as_columnar()
            .unwrap()
            .for_each_block_in(0..10, &mut |block| {
                let moved = block.rebased(42);
                assert_eq!(moved.start, 42);
                assert_eq!(moved.rows, block.rows);
                assert_eq!(moved.numeric[0], block.numeric[0]);
            })
            .unwrap();
    }

    #[test]
    fn reference_forwarding() {
        let rel = sample(20);
        let by_ref: &Relation = &rel;
        assert!(by_ref.as_columnar().is_some());
        assert_blocks_match_visitor(&by_ref, 0..20);
    }
}
