//! Out-of-bounds scan ranges are **clamped**, never an error: every
//! storage backend must treat `range.end > len()` as `len()` and an
//! empty or inverted remainder as a no-op, identically on both the
//! row-visitor path and the columnar block path. These tests pin that
//! contract across `Relation`, `FileRelation`, `ChunkedRelation`, and
//! `DurableRelation` so a new backend cannot quietly diverge.

use optrules_relation::{
    AppendRows, ChunkedRelation, DurabilityConfig, DurableRelation, FileRelationWriter, Relation,
    RowFrame, Schema, TupleScan, WalSync,
};
use std::ops::Range;
use std::path::PathBuf;

const ROWS: u64 = 10;

fn schema() -> Schema {
    Schema::builder().numeric("X").boolean("B").build()
}

/// The canonical 10-row content every backend under test holds.
fn row(i: u64) -> (f64, bool) {
    (i as f64 * 1.5, i.is_multiple_of(3))
}

fn memory() -> Relation {
    let mut rel = Relation::new(schema());
    for i in 0..ROWS {
        let (x, b) = row(i);
        rel.push_row(&[x], &[b]).unwrap();
    }
    rel
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("optrules-scan-clamp-{}-{name}", std::process::id()))
}

fn file_backed(name: &str) -> optrules_relation::FileRelation {
    let path = tmp(name);
    let mut w = FileRelationWriter::create(&path, schema()).unwrap();
    for i in 0..ROWS {
        let (x, b) = row(i);
        w.push_row(&[x], &[b]).unwrap();
    }
    w.finish().unwrap()
}

/// 4 base rows + two appended segments of 3 rows each.
fn chunked() -> ChunkedRelation<Relation> {
    let mut base = Relation::new(schema());
    for i in 0..4 {
        let (x, b) = row(i);
        base.push_row(&[x], &[b]).unwrap();
    }
    let frames = |range: Range<u64>| -> Vec<RowFrame> {
        range
            .map(|i| {
                let (x, b) = row(i);
                RowFrame {
                    numeric: vec![x],
                    boolean: vec![b],
                }
            })
            .collect()
    };
    let rel = ChunkedRelation::new(base);
    let rel = rel.with_rows(&frames(4..7)).unwrap();
    rel.with_rows(&frames(7..10)).unwrap()
}

/// 4 durable base rows + appends small enough to leave a live tail.
fn durable(name: &str) -> (DurableRelation, PathBuf) {
    let dir = tmp(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.rel");
    let mut w = FileRelationWriter::create(&base, schema()).unwrap();
    for i in 0..4 {
        let (x, b) = row(i);
        w.push_row(&[x], &[b]).unwrap();
    }
    w.finish().unwrap();
    let config = DurabilityConfig {
        spill_rows: 5,
        sync: WalSync::Off,
    };
    let mut rel = DurableRelation::open(&base, dir.join("data"), config)
        .unwrap()
        .relation;
    for chunk in [4..7, 7..10] {
        let frames: Vec<RowFrame> = chunk
            .map(|i| {
                let (x, b) = row(i);
                RowFrame {
                    numeric: vec![x],
                    boolean: vec![b],
                }
            })
            .collect();
        rel = rel.with_rows(&frames).unwrap();
    }
    (rel, dir)
}

/// Rows visited through the row path for `range`.
fn visit_rows<T: TupleScan + ?Sized>(rel: &T, range: Range<u64>) -> Vec<(u64, f64, bool)> {
    let mut out = Vec::new();
    rel.for_each_row_in(range, &mut |r, nums, bools| {
        out.push((r, nums[0], bools[0]));
    })
    .unwrap();
    out
}

/// Rows reconstructed through the columnar block path for `range`.
fn visit_blocks<T: TupleScan + ?Sized>(rel: &T, range: Range<u64>) -> Vec<(u64, f64, bool)> {
    let cols = rel.as_columnar().expect("backend must be columnar");
    let mut out = Vec::new();
    cols.for_each_block_in(range, &mut |block| {
        for i in 0..block.rows {
            out.push((
                block.start + i as u64,
                block.numeric[0][i],
                block.bits[0].get(i),
            ));
        }
    })
    .unwrap();
    out
}

/// The clamp cases every backend must agree on, as (range, expected
/// visited rows).
fn clamp_cases() -> Vec<(Range<u64>, Range<u64>)> {
    vec![
        (0..ROWS, 0..ROWS),         // exact
        (0..ROWS + 1, 0..ROWS),     // end one past len
        (0..u64::MAX, 0..ROWS),     // end far past len
        (3..7, 3..7),               // interior
        (3..ROWS + 100, 3..ROWS),   // start in bounds, end clamped
        (ROWS..ROWS + 5, 0..0),     // start at len: empty
        (ROWS + 7..ROWS + 9, 0..0), // entirely past len: empty
        (5..5, 0..0),               // empty in bounds
        #[allow(clippy::reversed_empty_ranges)]
        (7..3, 0..0), // inverted: empty, not a panic
    ]
}

fn check_backend<T: TupleScan + ?Sized>(rel: &T, label: &str) {
    assert_eq!(rel.len(), ROWS, "{label}: fixture must hold {ROWS} rows");
    for (range, expect) in clamp_cases() {
        let expected: Vec<(u64, f64, bool)> = expect
            .clone()
            .map(|i| {
                let (x, b) = row(i);
                (i, x, b)
            })
            .collect();
        assert_eq!(
            visit_rows(rel, range.clone()),
            expected,
            "{label}: row path diverged on {range:?}"
        );
        assert_eq!(
            visit_blocks(rel, range.clone()),
            expected,
            "{label}: block path diverged on {range:?}"
        );
    }
}

#[test]
fn memory_clamps() {
    check_backend(&memory(), "Relation");
}

#[test]
fn file_clamps() {
    let rel = file_backed("file");
    check_backend(&rel, "FileRelation");
}

#[test]
fn chunked_clamps() {
    check_backend(&chunked(), "ChunkedRelation");
}

#[test]
fn durable_clamps() {
    let (rel, dir) = durable("durable");
    check_backend(&rel, "DurableRelation");
    drop(rel);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same backend seen through `&T` and `&dyn TupleScan` keeps the
/// clamp behavior — the blanket forwarding impls change nothing.
#[test]
fn references_and_trait_objects_clamp_identically() {
    let rel = memory();
    check_backend(&&rel, "&Relation");
    check_backend(&rel as &dyn TupleScan, "&dyn TupleScan");
}
