//! Property tests for the storage substrate: file round trips for
//! arbitrary schemas and data, scan-range algebra, and condition
//! semantics.

use optrules_relation::gen::{DataGenerator, UniformWorkload};
use optrules_relation::{BoolAttr, Condition, FileRelationWriter, NumAttr, Schema, TupleScan};
use proptest::prelude::*;

fn arb_schema() -> impl Strategy<Value = Schema> {
    (1usize..5, 0usize..5).prop_map(|(n_num, n_bool)| {
        let mut b = Schema::builder();
        for i in 0..n_num {
            b = b.numeric(format!("N{i}"));
        }
        for i in 0..n_bool {
            b = b.boolean(format!("B{i}"));
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any relation written to disk reads back row-identical.
    #[test]
    fn file_roundtrip(schema in arb_schema(), rows in 0u64..200, seed in 0u64..1000) {
        let gen = UniformWorkload::new(
            schema.numeric_count(),
            schema.boolean_count(),
            (-1e6, 1e6),
            0.5,
        );
        let mem = gen.to_relation(rows, seed);
        let path = std::env::temp_dir().join(format!(
            "optrules-prop-file-{}-{}-{}.rel",
            std::process::id(),
            rows,
            seed
        ));
        let mut w = FileRelationWriter::create(&path, mem.schema().clone()).unwrap();
        mem.for_each_row(&mut |_, nums, bools| {
            w.push_row(nums, bools).unwrap();
        }).unwrap();
        let file = w.finish().unwrap();
        prop_assert_eq!(file.len(), mem.len());
        prop_assert_eq!(file.schema(), mem.schema());
        let mut mismatch = false;
        file.for_each_row(&mut |row, nums, bools| {
            for (c, &v) in nums.iter().enumerate() {
                if mem.numeric_value(NumAttr(c), row as usize) != v {
                    mismatch = true;
                }
            }
            for (c, &b) in bools.iter().enumerate() {
                if mem.bool_value(BoolAttr(c), row as usize) != b {
                    mismatch = true;
                }
            }
        }).unwrap();
        prop_assert!(!mismatch);
        std::fs::remove_file(&path).unwrap();
    }

    /// Splitting a scan at any point yields the same rows as one scan.
    #[test]
    fn scan_splits_compose(rows in 1u64..300, split in 0u64..300, seed in 0u64..50) {
        let gen = UniformWorkload::new(1, 1, (0.0, 1.0), 0.5);
        let rel = gen.to_relation(rows, seed);
        let split = split.min(rows);
        let mut full = Vec::new();
        rel.for_each_row(&mut |r, n, b| full.push((r, n[0], b[0]))).unwrap();
        let mut parts = Vec::new();
        rel.for_each_row_in(0..split, &mut |r, n, b| parts.push((r, n[0], b[0]))).unwrap();
        rel.for_each_row_in(split..rows, &mut |r, n, b| parts.push((r, n[0], b[0]))).unwrap();
        prop_assert_eq!(full, parts);
    }

    /// Conjunction semantics: `a.and(b)` evaluates as `a && b` on every
    /// tuple.
    #[test]
    fn condition_and_is_logical_and(
        nums in prop::collection::vec(-10.0f64..10.0, 2..4),
        bools in prop::collection::vec(any::<bool>(), 2..4),
        lo in -10.0f64..10.0,
        width in 0.0f64..10.0,
    ) {
        let a = Condition::NumInRange(NumAttr(0), lo, lo + width);
        let b = Condition::BoolIs(BoolAttr(0), true);
        let both = a.clone().and(b.clone());
        prop_assert_eq!(
            both.eval(&nums, &bools),
            a.eval(&nums, &bools) && b.eval(&nums, &bools)
        );
    }

    /// Generators honour the requested row count and schema arity for
    /// every configuration.
    #[test]
    fn generator_contract(n_num in 1usize..6, n_bool in 0usize..6, rows in 0u64..150) {
        let gen = UniformWorkload::new(n_num, n_bool, (0.0, 1.0), 0.3);
        let rel = gen.to_relation(rows, 1);
        prop_assert_eq!(rel.len(), rows);
        prop_assert_eq!(rel.schema().numeric_count(), n_num);
        prop_assert_eq!(rel.schema().boolean_count(), n_bool);
        let mut count = 0u64;
        rel.for_each_row(&mut |_, nums, bools| {
            assert_eq!(nums.len(), n_num);
            assert_eq!(bools.len(), n_bool);
            count += 1;
        }).unwrap();
        prop_assert_eq!(count, rows);
    }
}
