//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a
//! different stream than upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only relies on determinism given a
//! seed and on uniformity good enough for statistical tests, both of
//! which xoshiro256** provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution:
/// uniform over `[0, 1)` for floats, uniform over the full domain for
/// integers and `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Truncation keeps the low bits: uniform over the
                // type's full domain (two's complement for signed).
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`]. Generic over the element
/// type (like upstream rand) so untyped integer literals in e.g.
/// `rng.gen_range(0..5)` are inferred from the call's return context.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % width;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % width;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro generators.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_int_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
