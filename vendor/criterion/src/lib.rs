//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the criterion API surface its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: warm up for `warm_up_time`, then
//! run batches of iterations until `measurement_time` elapses and report
//! the mean wall-clock time per iteration (plus throughput when
//! configured). No statistics, plots, or saved baselines — just honest
//! numbers on stdout, which is all the paper-reproduction harness needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for parity with criterion.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's composite id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// The timing driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// (total elapsed, iterations) recorded by [`Bencher::iter`].
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, first warming up, then iterating until the
    /// measurement window elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let start = Instant::now();
        while elapsed < self.measurement || iters == 0 {
            black_box(f());
            iters += 1;
            elapsed = start.elapsed();
        }
        self.result = Some((elapsed, iters));
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Criterion compatibility: sample count is ignored here (the
    /// stand-in reports a single mean over the measurement window).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        self.report(&id.into_benchmark_id().name, b.result);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b, input);
        self.report(&id.into_benchmark_id().name, b.result);
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, result: Option<(Duration, u64)>) {
        let Some((elapsed, iters)) = result else {
            println!(
                "{}/{id:<40} (no measurement: b.iter never called)",
                self.name
            );
            return;
        };
        let per_iter = elapsed.as_secs_f64() / iters as f64;
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {}/s", human_count(n as f64 / per_iter))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {}B/s", human_count(n as f64 / per_iter))
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<40} time: {:>12}  ({iters} iters){thr}",
            self.name,
            human_time(per_iter),
        );
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Conversion into a [`BenchmarkId`] (so plain `&str` names work).
pub trait IntoBenchmarkId {
    /// Converts `self`.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group with default timing (0.3 s warm
    /// up, 2 s measurement).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Bundles bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn human_units() {
        assert!(human_time(2.0).ends_with(" s"));
        assert!(human_time(2e-3).ends_with(" ms"));
        assert!(human_time(2e-6).ends_with("µs"));
        assert!(human_time(2e-9).ends_with("ns"));
        assert!(human_count(5e6).starts_with("5.000 M"));
    }
}
