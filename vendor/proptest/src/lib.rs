//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`proptest!`]
//! macro, range/tuple/[`collection::vec`] strategies, [`Strategy::prop_map`],
//! [`any`] (for `bool`, the integer types, and the float types — float
//! generation covers all bit patterns, so NaN and the infinities do
//! come up), [`prop_oneof!`], [`option::of`],
//! `prop_assert!`/`prop_assert_eq!`, and [`ProptestConfig`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case
//! reports its generated inputs, case index, and the per-test seed, and
//! the deterministic generator means re-running the test replays the
//! same cases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-test random source.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for case `case` of the property named `name`.
    /// Deterministic, so failures replay on re-run.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(StdRng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy over the whole domain.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over all values of a type (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy over both booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy over every value of a primitive numeric type (see the
/// [`Arbitrary`] impls).
#[derive(Debug, Clone, Copy)]
pub struct AnyNum<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyNum<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyNum<$t>;
            fn arbitrary() -> AnyNum<$t> {
                AnyNum(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_any_float {
    ($(($t:ty, $bits:ty)),*) => {$(
        impl Strategy for AnyNum<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Uniform over bit patterns, like real proptest's full
                // float domain: subnormals, ±∞, and NaNs included.
                <$t>::from_bits(rng.0.gen::<$bits>())
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyNum<$t>;
            fn arbitrary() -> AnyNum<$t> {
                AnyNum(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_float!((f32, u32), (f64, u64));

/// One arm of a [`Union`]: a boxed generator closure.
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// A strategy choosing uniformly among boxed alternatives — the
/// engine behind [`prop_oneof!`]. (Real proptest supports weights;
/// this stand-in picks uniformly.)
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T: Debug> Union<T> {
    /// Builds a union from generator closures (use [`prop_oneof!`]).
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Chooses uniformly among the listed strategies (all must generate
/// the same value type). Unlike real proptest, `weight =>` prefixes
/// are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(
            {
                let s = $strat;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }
        ),+])
    };
}

/// `Option` strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy for `Option`s; see [`of`].
    #[derive(Debug)]
    pub struct OptionStrategy<S>(S);

    /// Generates `None` half the time and `Some` of the inner strategy
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen() {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    /// Module-style access (`prop::collection::vec`), mirroring
    /// `proptest::prelude::prop`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, Union,
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Real proptest resamples; this stand-in just moves to the next case,
/// which is equivalent for loose preconditions.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts a condition inside a property (plain `assert!` here — this
/// stand-in has no shrinking machinery to unwind through).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases. On failure the
/// offending inputs and case index are printed before the panic
/// propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @expand ($cfg) $($rest)* }
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                let vals = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                let rendered = format!("{vals:?}");
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let ($($pat,)+) = vals;
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest {}: case {case}/{} failed with inputs {rendered}",
                        stringify!($name),
                        cfg.cases,
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!{ @expand ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_inclusive_and_exclusive(a in 1u64..10, b in 0.0f64..=1.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((1u32..5, any::<bool>()), 2..20).prop_map(|pairs| {
                pairs.into_iter().map(|(n, _)| n).collect::<Vec<_>>()
            }),
        ) {
            prop_assert!((2..20).contains(&v.len()));
            prop_assert!(v.iter().all(|&n| (1..5).contains(&n)));
        }

        #[test]
        fn tuple_patterns_destructure((x, y) in (0i64..=5, -1.0f64..1.0)) {
            prop_assert!((0..=5).contains(&x));
            prop_assert_ne!(y, 1.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = 0u64..1000;
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }
}
