//! Golden transcripts for the `{"cmd":"metrics"}` control frame: with
//! `OPTRULES_FROZEN_CLOCK=1` every duration pins to zero while the
//! histogram *counts* stay real, so the full metrics document is
//! byte-stable — against a single-node `optrules serve` and against a
//! coordinator over two shards, at `--workers 1` and `--workers 4`
//! alike (`--cache-shards 1` keeps cache placement deterministic).
//!
//! The client here is deliberately interactive — one request line,
//! one response line, repeat — so frame segmentation (and with it the
//! server's `batch_execute`/`response_write` counts) cannot depend on
//! socket timing the way a pipelined blast would.
//!
//! Regenerate the goldens after an intentional shape change with
//! `OPTRULES_BLESS=1 cargo test --test metrics_golden`.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_optrules"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "optrules-metrics-golden-{}-{name}.rel",
        std::process::id()
    ))
}

fn data_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

struct Server {
    child: Child,
    addr: String,
}

/// Spawns the binary with a frozen observability clock and parses the
/// `listening on <addr>` line.
fn spawn_listening(args: &[&str]) -> Server {
    let mut child = bin()
        .args(args)
        .env("OPTRULES_FROZEN_CLOCK", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("process spawns");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("read listening line");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
        .to_string();
    Server { child, addr }
}

const FLAGS: [&str; 10] = [
    "--buckets",
    "100",
    "--min-support",
    "10",
    "--min-confidence",
    "60",
    "--seed",
    "7",
    "--cache-shards",
    "1",
];

fn spawn_serve(path: &str, workers: &str) -> Server {
    let mut args = vec!["serve", path, "--addr", "127.0.0.1:0", "--workers", workers];
    args.extend_from_slice(&FLAGS);
    spawn_listening(&args)
}

/// One request line, one response line, strictly alternating, all on
/// one connection — each line becomes its own frame, so the per-frame
/// histograms count exactly `lines.len()` samples.
fn interactive(addr: &str, lines: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writeln!(stream, "{line}").expect("send request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        assert!(
            response.ends_with('\n'),
            "connection closed mid-transcript after {response:?}"
        );
        responses.push(response.trim_end().to_string());
    }
    drop(stream);
    responses
}

fn roundtrip(addr: &str, input: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| line.expect("read"))
        .collect()
}

fn shutdown(mut server: Server) {
    assert_eq!(
        roundtrip(&server.addr, "{\"cmd\":\"shutdown\"}\n"),
        ["{\"ok\":\"shutdown\"}"]
    );
    assert!(server.child.wait().expect("server exits").success());
}

/// Runs the transcript plus a final `{"cmd":"metrics"}` and returns
/// that last response line.
fn metrics_after_transcript(addr: &str) -> String {
    let specs = std::fs::read_to_string(data_path("metrics_specs.ndjson")).expect("read specs");
    let mut lines: Vec<&str> = specs.lines().collect();
    lines.push("{\"cmd\":\"metrics\"}");
    let responses = interactive(addr, &lines);
    responses.last().expect("metrics answered").clone()
}

/// Byte-compares `actual` against the checked-in golden — or rewrites
/// the golden when `OPTRULES_BLESS` is set.
fn check_golden(actual: &str, name: &str) {
    let path = data_path(name);
    if std::env::var_os("OPTRULES_BLESS").is_some() {
        std::fs::write(&path, format!("{actual}\n")).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {} (bless with OPTRULES_BLESS=1): {e}", name));
    assert_eq!(
        actual,
        expected.trim_end(),
        "metrics document diverged from {name}"
    );
}

/// Cheap structural sanity on the document so a blessed golden cannot
/// silently pin nonsense: it parses, and every histogram object keeps
/// `p50 ≤ p90 ≤ p99 ≤ max` and a bucket total equal to `count`.
fn assert_wellformed(doc: &str) {
    use optrules::core::json::{Json, Num};
    fn as_u64(value: &Json) -> Option<u64> {
        match value {
            Json::Num(Num::UInt(n)) => Some(*n),
            _ => None,
        }
    }
    fn walk(value: &Json, histograms: &mut usize) {
        let Json::Obj(fields) = value else {
            if let Json::Arr(items) = value {
                for item in items {
                    walk(item, histograms);
                }
            }
            return;
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        if let (Some(count), Some(p50), Some(p90), Some(p99), Some(max), Some(Json::Arr(buckets))) = (
            get("count").and_then(as_u64),
            get("p50_ns").and_then(as_u64),
            get("p90_ns").and_then(as_u64),
            get("p99_ns").and_then(as_u64),
            get("max_ns").and_then(as_u64),
            get("buckets"),
        ) {
            *histograms += 1;
            assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "quantile order");
            let total: u64 = buckets
                .iter()
                .map(|pair| match pair {
                    Json::Arr(lo_count) => as_u64(&lo_count[1]).expect("bucket count"),
                    other => panic!("bucket entry {other:?}"),
                })
                .sum();
            assert_eq!(total, count, "bucket totals must add up to count");
        }
        for (_, nested) in fields {
            walk(nested, histograms);
        }
    }
    let parsed = Json::parse(doc).expect("metrics document parses");
    let mut histograms = 0;
    walk(&parsed, &mut histograms);
    assert!(
        histograms >= 4,
        "expected several histograms, saw {histograms}"
    );
}

#[test]
fn single_node_metrics_document_is_byte_stable() {
    let path = tmp("single");
    let path_s = path.to_str().unwrap();
    let gen = bin()
        .args(["gen", "bank", path_s, "--rows", "20000", "--seed", "3"])
        .output()
        .expect("gen runs");
    assert!(gen.status.success(), "{gen:?}");

    for workers in ["1", "4"] {
        let server = spawn_serve(path_s, workers);
        let doc = metrics_after_transcript(&server.addr);
        assert_wellformed(&doc);
        check_golden(&doc, "metrics_serve_expected.json");
        shutdown(server);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn coordinator_metrics_document_is_byte_stable() {
    let full = tmp("full");
    let full_s = full.to_str().unwrap();
    let gen = bin()
        .args(["gen", "bank", full_s, "--rows", "20000", "--seed", "3"])
        .output()
        .expect("gen runs");
    assert!(gen.status.success(), "{gen:?}");

    let mut shard_paths = Vec::new();
    for (i, (start, end)) in [("0", "8000"), ("8000", "20000")].iter().enumerate() {
        let path = tmp(&format!("shard{i}"));
        let out = bin()
            .args([
                "slice",
                full_s,
                path.to_str().unwrap(),
                "--start",
                start,
                "--end",
                end,
            ])
            .output()
            .expect("slice runs");
        assert!(out.status.success(), "{out:?}");
        shard_paths.push(path);
    }

    for workers in ["1", "4"] {
        let shards: Vec<Server> = shard_paths
            .iter()
            .map(|p| spawn_serve(p.to_str().unwrap(), workers))
            .collect();
        let shard_list = shards
            .iter()
            .map(|s| s.addr.clone())
            .collect::<Vec<_>>()
            .join(",");
        let mut args = vec!["coord", "--shards", &shard_list, "--workers", workers];
        args.extend_from_slice(&FLAGS);
        let coord = spawn_listening(&args);

        let doc = metrics_after_transcript(&coord.addr);
        assert_wellformed(&doc);
        check_golden(&doc, "metrics_coord_expected.json");

        shutdown(coord);
        for mut shard in shards {
            assert!(shard.child.wait().expect("shard exits").success());
        }
    }

    std::fs::remove_file(&full).unwrap();
    for path in shard_paths {
        std::fs::remove_file(path).unwrap();
    }
}

/// `--trace-log FILE` writes one NDJSON span per phase; on a
/// coordinator the per-shard RPC spans carry the same trace id as
/// their segment, so one slow request correlates across the fan-out.
#[test]
fn coordinator_trace_log_correlates_shard_spans() {
    let full = tmp("traced");
    let full_s = full.to_str().unwrap();
    let gen = bin()
        .args(["gen", "bank", full_s, "--rows", "4000", "--seed", "3"])
        .output()
        .expect("gen runs");
    assert!(gen.status.success(), "{gen:?}");
    let shard_path = tmp("traced-shard");
    let out = bin()
        .args(["slice", full_s, shard_path.to_str().unwrap()])
        .output()
        .expect("slice runs");
    assert!(out.status.success(), "{out:?}");

    let log = std::env::temp_dir().join(format!(
        "optrules-metrics-golden-{}-trace.ndjson",
        std::process::id()
    ));
    let log_s = log.to_str().unwrap().to_string();
    let mut shard = spawn_serve(shard_path.to_str().unwrap(), "1");
    let mut args = vec![
        "coord",
        "--shards",
        &shard.addr,
        "--trace-log",
        &log_s,
        "--slow-query-ms",
        "0",
    ];
    args.extend_from_slice(&FLAGS);
    let coord = spawn_listening(&args);
    interactive(
        &coord.addr,
        &["{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"}}"],
    );
    shutdown(coord);
    assert!(shard.child.wait().expect("shard exits").success());

    let spans = std::fs::read_to_string(&log).expect("trace log written");
    let segment = spans
        .lines()
        .find(|l| l.contains("\"span\":\"segment\""))
        .unwrap_or_else(|| panic!("no segment span in {spans:?}"));
    let trace_id = segment
        .split("\"trace\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("segment span names its trace");
    for phase in ["rpc_values", "rpc_count"] {
        let needle = format!("\"trace\":\"{trace_id}\",\"span\":\"{phase}\",\"shard\":0");
        assert!(
            spans.lines().any(|l| l.contains(&needle)),
            "expected a {phase} span under trace {trace_id}: {spans:?}"
        );
    }

    std::fs::remove_file(&full).unwrap();
    std::fs::remove_file(&shard_path).unwrap();
    std::fs::remove_file(&log).unwrap();
}

/// Durable serving exposes the WAL-fsync and checkpoint histograms:
/// appends under `--wal-sync always` record one fsync each, and the
/// shutdown-drain checkpoint is not required — an explicit flush is.
#[test]
fn durable_serve_reports_wal_and_checkpoint_histograms() {
    let path = tmp("durable");
    let path_s = path.to_str().unwrap();
    let gen = bin()
        .args(["gen", "bank", path_s, "--rows", "2000", "--seed", "3"])
        .output()
        .expect("gen runs");
    assert!(gen.status.success(), "{gen:?}");
    let dir = std::env::temp_dir().join(format!(
        "optrules-metrics-golden-{}-durable-dir",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();

    let mut args = vec![
        "serve",
        path_s,
        "--addr",
        "127.0.0.1:0",
        "--data-dir",
        dir.to_str().unwrap(),
    ];
    args.extend_from_slice(&FLAGS);
    let server = spawn_listening(&args);
    let lines = [
        "{\"cmd\":\"append\",\"rows\":[[4200,35,900,12000,true,false,true]]}",
        "{\"cmd\":\"append\",\"rows\":[[800,61,2500,3000,false,true,false]]}",
        "{\"cmd\":\"flush\"}",
        "{\"cmd\":\"metrics\"}",
    ];
    let responses = interactive(&server.addr, &lines);
    let doc = responses.last().unwrap();
    assert_wellformed(doc);
    assert!(
        doc.contains("\"durability\":{\"wal_fsync\":{\"count\":2,"),
        "two appends must record two WAL fsyncs: {doc}"
    );
    assert!(
        doc.contains("\"checkpoint\":{\"count\":1,"),
        "the explicit flush must record one checkpoint: {doc}"
    );
    shutdown(server);

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
