//! The engine's caches must be invisible in the answers: every query
//! result must be byte-identical to what a cold, cache-free run of the
//! same pipeline produces — across seeds, generators, and query kinds.
//!
//! Two independent oracles guard this:
//!
//! * the **direct pipeline** (`equi_depth_cuts` → `count_buckets` →
//!   optimizers), reimplemented here exactly as the legacy `Miner`
//!   historically ran it, sharing no code with the engine's caching
//!   paths;
//! * the **`Miner` shim**, whose results must keep matching the engine
//!   it delegates to.

#![allow(deprecated)]

use optrules::bucketing::{count_buckets, equi_depth_cuts, CountSpec, EquiDepthConfig};
use optrules::core::engine::Engine as CoreEngine;
use optrules::prelude::*;

/// The legacy pipeline, inlined: one bucketization (with the engine's
/// per-attribute seed mix) and one counting scan, then both optimizers.
#[allow(clippy::too_many_arguments)]
fn direct_pair(
    rel: &Relation,
    attr: NumAttr,
    presumptive: Condition,
    objective: Condition,
    buckets: usize,
    seed: u64,
    min_support: Ratio,
    min_confidence: Ratio,
) -> (Option<RangeRule>, Option<RangeRule>) {
    let cfg = EquiDepthConfig {
        buckets,
        samples_per_bucket: 40,
        seed: seed ^ (attr.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        method: SamplingMethod::WithReplacement,
    };
    let spec = equi_depth_cuts(rel, attr, &cfg).unwrap();
    let combined = presumptive.clone().and(objective);
    let what = CountSpec {
        attr,
        presumptive,
        bool_targets: vec![combined],
        sum_targets: Vec::new(),
    };
    let counts = count_buckets(rel, &spec, &what).unwrap();
    let total_rows = counts.total_rows;
    let (_, cc) = counts.compact();
    if cc.bucket_count() == 0 {
        return (None, None);
    }
    let (u, v) = (&cc.u, &cc.bool_v[0]);
    let mk = |kind, r: OptRange| RangeRule {
        kind,
        bucket_range: (r.s, r.t),
        value_range: (cc.ranges[r.s].0, cc.ranges[r.t].1),
        sup_count: r.sup_count,
        hits: r.hits,
        total_rows,
    };
    let sup = optimize_support(u, v, min_confidence)
        .unwrap()
        .map(|r| mk(RuleKind::OptimizedSupport, r));
    let conf = optimize_confidence(u, v, min_support.min_count(total_rows))
        .unwrap()
        .map(|r| mk(RuleKind::OptimizedConfidence, r));
    (sup, conf)
}

#[test]
fn engine_matches_direct_pipeline_across_seeds() {
    for seed in [0u64, 1, 7, 42, 0xdead_beef] {
        for buckets in [25usize, 120] {
            let rel = BankGenerator::default().to_relation(12_000, seed ^ 0x55);
            let schema = rel.schema().clone();
            let attr = schema.numeric("Balance").unwrap();
            let loan = Condition::BoolIs(schema.boolean("CardLoan").unwrap(), true);
            let min_support = Ratio::percent(10);
            let min_confidence = Ratio::percent(55);

            let (direct_sup, direct_conf) = direct_pair(
                &rel,
                attr,
                Condition::True,
                loan.clone(),
                buckets,
                seed,
                min_support,
                min_confidence,
            );

            let mut engine = CoreEngine::with_config(
                &rel,
                EngineConfig {
                    buckets,
                    seed,
                    min_support,
                    min_confidence,
                    ..EngineConfig::default()
                },
            );
            // Run twice: the first answer is cold, the second comes
            // entirely from the cache. Both must equal the oracle.
            for round in 0..2 {
                let rules = engine
                    .query("Balance")
                    .objective(loan.clone())
                    .run()
                    .unwrap();
                assert_eq!(
                    rules.optimized_support(),
                    direct_sup.as_ref(),
                    "seed {seed} buckets {buckets} round {round}: support rule diverged"
                );
                assert_eq!(
                    rules.optimized_confidence(),
                    direct_conf.as_ref(),
                    "seed {seed} buckets {buckets} round {round}: confidence rule diverged"
                );
            }
            assert_eq!(engine.stats().scans, 1, "second round must not rescan");
        }
    }
}

#[test]
fn engine_matches_direct_pipeline_for_generalized_rules() {
    for seed in [3u64, 11, 29] {
        let rel = RetailGenerator::default().to_relation(15_000, seed);
        let schema = rel.schema().clone();
        let amount = schema.numeric("Amount").unwrap();
        let pizza = Condition::BoolIs(schema.boolean("Pizza").unwrap(), true);
        let potato = Condition::BoolIs(schema.boolean("Potato").unwrap(), true);
        let min_support = Ratio::percent(2);
        let min_confidence = Ratio::percent(65);

        let (direct_sup, direct_conf) = direct_pair(
            &rel,
            amount,
            pizza.clone(),
            potato.clone(),
            80,
            seed,
            min_support,
            min_confidence,
        );
        let mut engine = CoreEngine::with_config(
            &rel,
            EngineConfig {
                buckets: 80,
                seed,
                min_support,
                min_confidence,
                ..EngineConfig::default()
            },
        );
        let rules = engine
            .query_attr(amount)
            .given(pizza.clone())
            .objective(potato.clone())
            .run()
            .unwrap();
        assert_eq!(
            rules.optimized_support(),
            direct_sup.as_ref(),
            "seed {seed}"
        );
        assert_eq!(
            rules.optimized_confidence(),
            direct_conf.as_ref(),
            "seed {seed}"
        );
    }
}

#[test]
fn miner_shim_equals_engine_everywhere() {
    for seed in [1u64, 9, 77] {
        let rel = BankGenerator::default().to_relation(8_000, seed);
        let schema = rel.schema().clone();
        let attr = schema.numeric("Balance").unwrap();
        let loan = Condition::BoolIs(schema.boolean("CardLoan").unwrap(), true);
        let config = MinerConfig {
            buckets: 64,
            seed,
            min_support: Ratio::percent(10),
            min_confidence: Ratio::percent(55),
            ..MinerConfig::default()
        };
        let miner = Miner::new(config);

        // Single pair.
        let mined = miner.mine(&rel, attr, loan.clone()).unwrap();
        let mut engine = CoreEngine::with_config(&rel, config.into());
        let rules = engine
            .query_attr(attr)
            .objective(loan.clone())
            .run()
            .unwrap();
        assert_eq!(MinedPair::from(rules), mined, "seed {seed}");

        // All pairs: the shim's Vec equals the collected lazy iterator.
        let all = miner.mine_all_pairs(&rel).unwrap();
        let streamed: Vec<MinedPair> = engine
            .queries_for_all_pairs()
            .map(|r| MinedPair::from(r.unwrap()))
            .collect();
        assert_eq!(all, streamed, "seed {seed}");

        // Average operator.
        let checking = schema.numeric("CheckingAccount").unwrap();
        let saving = schema.numeric("SavingAccount").unwrap();
        let avg = miner
            .mine_average(&rel, checking, saving, 12_000.0)
            .unwrap();
        let rules = engine
            .query_attr(checking)
            .average_of_attr(saving)
            .min_average(12_000.0)
            .run()
            .unwrap();
        assert_eq!(
            avg.max_average.map(|(r, v)| (r.s, r.t, r.sup_count, v)),
            rules.max_average().map(|a| (
                a.bucket_range.0,
                a.bucket_range.1,
                a.sup_count,
                a.value_range
            )),
            "seed {seed}"
        );
        assert_eq!(
            avg.max_support.map(|(r, v)| (r.s, r.t, r.sup_count, v)),
            rules.max_support_average().map(|a| (
                a.bucket_range.0,
                a.bucket_range.1,
                a.sup_count,
                a.value_range
            )),
            "seed {seed}"
        );
    }
}

#[test]
fn second_query_skips_resampling_and_rescanning() {
    let rel = BankGenerator::default().to_relation(20_000, 5);
    let mut engine = CoreEngine::with_config(
        rel,
        EngineConfig {
            buckets: 200,
            ..EngineConfig::default()
        },
    );
    engine
        .query("Balance")
        .objective_is("CardLoan")
        .run()
        .unwrap();
    let cold = engine.stats();
    assert_eq!((cold.bucketizations, cold.scans), (1, 1));

    // Same attribute, same spec: pure cache, no new O(N) work.
    engine
        .query("Balance")
        .objective_is("CardLoan")
        .min_support_pct(25)
        .run()
        .unwrap();
    // Same attribute, different Boolean target: still the shared scan.
    engine
        .query("Balance")
        .objective_is("OnlineBanking")
        .run()
        .unwrap();
    let warm = engine.stats();
    assert_eq!(
        (warm.bucketizations, warm.scans),
        (1, 1),
        "warm queries must not resample or rescan: {warm:?}"
    );
    assert_eq!(warm.scan_cache_hits, 2);
}
