//! §1.4 rectangle mining end-to-end: the engine's grid path against a
//! cache-free direct pipeline and the exhaustive O(nx²·ny²) oracle,
//! invariance across storage layouts (memory / chunked / durable), the
//! two-shard coordinator against the flat-relation oracle, and grid
//! dedup through both `EngineStats` and the coordinator's `shard_rpcs`.
//!
//! Grid cells are integer counts and the observed ranges are min/max
//! folds — no float sums — so unlike the average operator, rectangle
//! answers are byte-identical across *any* shard partitioning, even on
//! arbitrary-float bank data.

use optrules::bucketing::{equi_depth_cuts, EquiDepthConfig};
use optrules::core::json;
use optrules::core::region2d::{
    optimize_confidence_rectangle, optimize_rectangle_naive, optimize_support_rectangle, Rect,
};
use optrules::core::server::{serve, serve_service, ServerConfig};
use optrules::core::shared::attr_seed;
use optrules::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

fn config() -> EngineConfig {
    EngineConfig {
        buckets: 100, // 1-D cell budget → 10 × 10 default grid
        seed: 7,
        min_support: Ratio::percent(5),
        min_confidence: Ratio::percent(60),
        ..EngineConfig::default()
    }
}

fn rect_spec(x: &str, y: &str, target: &str) -> QuerySpec {
    let mut spec = QuerySpec::boolean(x, target);
    spec.attr2 = Some(y.to_string());
    spec
}

/// The cache-free direct pipeline: per-axis Algorithm 3.1 cuts with the
/// engine's per-attribute seed mix, then one grid counting scan.
/// Shares no code with the engine's plan/cache machinery.
fn direct_grid(
    rel: &Relation,
    x: NumAttr,
    y: NumAttr,
    per_axis: usize,
    seed: u64,
    presumptive: &Condition,
    objective: &Condition,
) -> GridCounts {
    let cuts = |attr: NumAttr| {
        let cfg = EquiDepthConfig {
            buckets: per_axis,
            samples_per_bucket: 40,
            seed: attr_seed(seed, attr),
            method: SamplingMethod::WithReplacement,
        };
        equi_depth_cuts(rel, attr, &cfg).unwrap()
    };
    GridCounts::count(rel, x, y, &cuts(x), &cuts(y), presumptive, objective).unwrap()
}

/// Folds a rectangle's bucket spans back to value ranges, exactly as
/// the engine instantiates its `RectRule`s.
fn instantiate(kind: RuleKind, r: Rect, grid: &GridCounts) -> RectRule {
    let fold = |ranges: &[(f64, f64)], a: usize, b: usize| {
        ranges[a..=b]
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(l, h)| {
                (lo.min(l), hi.max(h))
            })
    };
    RectRule {
        kind,
        x_bucket_range: (r.x1, r.x2),
        y_bucket_range: (r.y1, r.y2),
        x_value_range: fold(&grid.x_ranges, r.x1, r.x2),
        y_value_range: fold(&grid.y_ranges, r.y1, r.y2),
        sup_count: r.sup_count,
        hits: r.hits,
        total_rows: grid.total_rows,
    }
}

/// The engine's rectangle answers equal the direct pipeline run through
/// the fast sweep, and the fast sweep scores exactly like the
/// exhaustive oracle — across seeds, cold and warm.
#[test]
fn engine_matches_direct_pipeline_and_naive_oracle() {
    for seed in [0u64, 7, 42, 0xdead_beef] {
        let rel = BankGenerator::default().to_relation(12_000, seed ^ 0x55);
        let schema = rel.schema().clone();
        let (x, y) = (
            schema.numeric("Age").unwrap(),
            schema.numeric("Balance").unwrap(),
        );
        let loan = Condition::BoolIs(schema.boolean("CardLoan").unwrap(), true);
        let mut cfg = config();
        cfg.seed = seed;

        let grid = direct_grid(&rel, x, y, 10, seed, &Condition::True, &loan);
        let w = cfg.min_support.min_count(grid.total_rows);
        let fast_conf = optimize_confidence_rectangle(&grid, w).unwrap().unwrap();
        let fast_sup = optimize_support_rectangle(&grid, cfg.min_confidence)
            .unwrap()
            .unwrap();

        // The exhaustive prefix-sum oracle agrees with the sweep on the
        // exact (integer) score, with identical tie-breaking.
        let naive_conf = optimize_rectangle_naive(&grid, Some(w), None, false).unwrap();
        assert_eq!(
            (fast_conf.hits, fast_conf.sup_count),
            (naive_conf.hits, naive_conf.sup_count),
            "seed {seed}: confidence sweep vs naive"
        );
        let naive_sup =
            optimize_rectangle_naive(&grid, None, Some(cfg.min_confidence), true).unwrap();
        assert_eq!(
            (fast_sup.sup_count, fast_sup.hits),
            (naive_sup.sup_count, naive_sup.hits),
            "seed {seed}: support sweep vs naive"
        );

        let engine = SharedEngine::with_config(&rel, cfg);
        let spec = rect_spec("Age", "Balance", "CardLoan");
        // Run twice: cold, then entirely from the grid cache.
        for round in 0..2 {
            let rules = engine.run_spec(&spec).unwrap();
            assert_eq!(rules.attr2.as_deref(), Some("Balance"));
            assert_eq!(rules.total_rows, grid.total_rows);
            assert_eq!(rules.buckets_used, grid.nx() * grid.ny());
            assert_eq!(
                rules.rect_confidence(),
                Some(&instantiate(RuleKind::RectConfidence, fast_conf, &grid)),
                "seed {seed} round {round}: confidence rectangle diverged"
            );
            assert_eq!(
                rules.rect_support(),
                Some(&instantiate(RuleKind::RectSupport, fast_sup, &grid)),
                "seed {seed} round {round}: support rectangle diverged"
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.scans, 1, "seed {seed}: warm round must not rescan");
        assert_eq!(stats.bucketizations, 2, "seed {seed}: one per axis");
    }
}

/// Deterministic integer-valued rows (same shape as `tests/coord.rs`).
fn integer_rows(rows: u64) -> Vec<(f64, f64, bool)> {
    (0..rows)
        .map(|i| {
            let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
            (
                (h % 1_000) as f64,
                ((h >> 10) % 500) as f64,
                (h >> 20) % 10 < 4,
            )
        })
        .collect()
}

fn xyc_schema() -> Schema {
    Schema::builder()
        .numeric("X")
        .numeric("Y")
        .boolean("C")
        .build()
}

fn memory_rel(rows: &[(f64, f64, bool)]) -> Relation {
    let mut rel = Relation::with_capacity(xyc_schema(), rows.len());
    for &(x, y, c) in rows {
        rel.push_row(&[x, y], &[c]).unwrap();
    }
    rel
}

fn frames(rows: &[(f64, f64, bool)]) -> Vec<RowFrame> {
    rows.iter()
        .map(|&(x, y, c)| RowFrame {
            numeric: vec![x, y],
            boolean: vec![c],
        })
        .collect()
}

/// The same logical rows through every storage layout give identical
/// `RuleSet`s: sampling is by row index and the grid scan folds in row
/// order, so segment boundaries must be invisible.
#[test]
fn rectangle_rules_are_identical_across_storage_layouts() {
    let rows = integer_rows(6_000);
    let mut spec = rect_spec("X", "Y", "C");
    // The hash-driven objective holds on ~40 % of rows, so a support
    // rectangle exists below that and the confidence sweep has room.
    spec.min_confidence = Some(Ratio::percent(35));

    let flat = memory_rel(&rows);
    let expected = SharedEngine::with_config(&flat, config())
        .run_spec(&spec)
        .unwrap();
    assert!(expected.rect_confidence().is_some());
    assert!(expected.rect_support().is_some());

    // Chunked: base + two appended segments.
    let chunked = ChunkedRelation::new(memory_rel(&rows[..2_000]))
        .with_rows(&frames(&rows[2_000..4_500]))
        .unwrap()
        .with_rows(&frames(&rows[4_500..]))
        .unwrap();
    let got = SharedEngine::with_config(chunked, config())
        .run_spec(&spec)
        .unwrap();
    assert_eq!(got, expected, "ChunkedRelation diverged");

    // Durable: file-backed base + WAL-backed appends that spill.
    let dir = std::env::temp_dir().join(format!("optrules-region2d-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.rel");
    let mut w = FileRelationWriter::create(&base, xyc_schema()).unwrap();
    for &(x, y, c) in &rows[..2_000] {
        w.push_row(&[x, y], &[c]).unwrap();
    }
    w.finish().unwrap();
    let durable_cfg = DurabilityConfig {
        spill_rows: 1_000,
        sync: WalSync::Off,
    };
    let mut durable = DurableRelation::open(&base, dir.join("data"), durable_cfg)
        .unwrap()
        .relation;
    for chunk in [&rows[2_000..4_500], &rows[4_500..]] {
        durable = durable.with_rows(&frames(chunk)).unwrap();
    }
    let got = SharedEngine::with_config(durable, config())
        .run_spec(&spec)
        .unwrap();
    assert_eq!(got, expected, "DurableRelation diverged");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Two rectangle specs over the same attribute pair share one grid:
/// one counting scan, every query assembled warm.
#[test]
fn batch_dedups_the_grid_across_specs() {
    let rows = integer_rows(4_000);
    let rel = memory_rel(&rows);
    let mut tighter = rect_spec("X", "Y", "C");
    tighter.min_support = Some(Ratio::percent(20));
    let mut conf_only = rect_spec("X", "Y", "C");
    conf_only.task = Task::OptimizeConfidence;
    let specs = vec![rect_spec("X", "Y", "C"), tighter, conf_only];

    for threads in [1usize, 4] {
        let engine = SharedEngine::with_config(&rel, config());
        let results = engine.run_batch(&specs, threads);
        assert!(results.iter().all(|r| r.is_ok()), "threads={threads}");
        let stats = engine.stats();
        assert_eq!(stats.scans, 1, "threads={threads}: one shared grid scan");
        assert_eq!(stats.bucketizations, 2, "threads={threads}: one per axis");
        assert_eq!(
            stats.scan_cache_hits,
            specs.len() as u64,
            "threads={threads}: every spec assembled warm"
        );
    }
}

/// Copies rows `range` of `rel` into a fresh in-memory relation.
fn slice_rel(rel: &Relation, range: std::ops::Range<u64>) -> Relation {
    let mut part = Relation::new(TupleScan::schema(rel).clone());
    rel.for_each_row_in(range, &mut |_, nums, bools| {
        part.push_row(nums, bools).expect("same schema");
    })
    .expect("in-memory scan cannot fail");
    part
}

/// One-shot client: write, half-close, read to EOF.
fn rt(addr: SocketAddr, input: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| line.expect("read"))
        .collect()
}

/// Pulls a `u64` field out of a `{"ok": {...}}` response line.
fn ok_field(line: &str, field: &str) -> u64 {
    use optrules::core::json::{Json, Num};
    let Ok(Json::Obj(envelope)) = Json::parse(line) else {
        panic!("unparseable response {line:?}");
    };
    let Some((_, Json::Obj(body))) = envelope.iter().find(|(key, _)| key == "ok") else {
        panic!("response is not ok: {line:?}");
    };
    match body.iter().find(|(key, _)| key == field) {
        Some((_, Json::Num(Num::UInt(value)))) => *value,
        other => panic!("field {field:?} missing or non-integer: {other:?}"),
    }
}

/// Rectangle specs through the two-shard coordinator are byte-identical
/// to the single-node server over the concatenated rows — cold and
/// warm, at 1 and 4 workers — and the warm repeat adds zero shard RPCs
/// (the merged grid is cached at the coordinator).
#[test]
fn coordinator_matches_flat_oracle_on_rectangles() {
    let rows = integer_rows(5_000);
    let full = memory_rel(&rows);
    let mut with_given = rect_spec("X", "Y", "C");
    with_given.given = vec![CondSpec::NumInRange {
        attr: "X".into(),
        lo: Real(100.0),
        hi: Real(800.0),
    }];
    let mut rebucketed = rect_spec("Y", "X", "C");
    rebucketed.buckets = Some(8);
    let specs = [
        rect_spec("X", "Y", "C"),
        rect_spec("X", "Y", "C"), // duplicate: pure grid-cache hit
        with_given,
        rebucketed,
        QuerySpec::boolean("X", "C"),  // 1-D spec interleaved
        rect_spec("X", "NoSuch", "C"), // unknown attr2 fails identically
    ];
    let requests: String = specs.iter().map(|s| json::encode_spec(s) + "\n").collect();

    for (workers, batch_threads) in [(1, 1), (4, 4)] {
        let server_config = ServerConfig {
            workers,
            batch_threads,
            ..ServerConfig::default()
        };
        let single = serve(
            Arc::new(SharedEngine::with_config(
                slice_rel(&full, 0..full.len()),
                config(),
            )),
            "127.0.0.1:0",
            server_config,
        )
        .expect("bind single-node server");
        let reference = rt(single.addr(), &requests);
        assert!(reference[0].contains("\"kind\":\"rect_"), "{reference:?}");
        assert!(reference[5].starts_with("{\"error\":"), "{reference:?}");

        let shard_a = serve(
            Arc::new(SharedEngine::with_config(
                slice_rel(&full, 0..2_000),
                config(),
            )),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind shard");
        let shard_b = serve(
            Arc::new(SharedEngine::with_config(
                slice_rel(&full, 2_000..full.len()),
                config(),
            )),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind shard");
        let coordinator = Coordinator::connect(
            &[shard_a.addr().to_string(), shard_b.addr().to_string()],
            config(),
            CacheConfig::default(),
            CoordConfig::default(),
        )
        .expect("connect to shards");
        let coord = serve_service(Arc::new(coordinator), "127.0.0.1:0", server_config)
            .expect("bind coordinator");

        let cold = rt(coord.addr(), &requests);
        assert_eq!(cold, reference, "workers={workers} cold != single-node");

        let stats_cold = rt(coord.addr(), "{\"cmd\":\"stats\"}\n");
        let rpcs_cold = ok_field(&stats_cold[0], "shard_rpcs");
        assert!(rpcs_cold > 0);
        assert!(ok_field(&stats_cold[0], "merged_nodes") > 0);

        let warm = rt(coord.addr(), &requests);
        assert_eq!(warm, reference, "workers={workers} warm != single-node");
        let stats_warm = rt(coord.addr(), "{\"cmd\":\"stats\"}\n");
        assert_eq!(
            ok_field(&stats_warm[0], "shard_rpcs"),
            rpcs_cold,
            "a fully warm rectangle batch must not touch the shards"
        );

        coord.shutdown();
        coord.join();
        for shard in [shard_a, shard_b] {
            shard.join();
        }
        single.shutdown();
        single.join();
    }
}
