//! The TCP query server (`optrules::core::server`, `optrules serve`):
//! wire-level robustness, cross-connection cache persistence and
//! singleflight coalescing, graceful shutdown, and the shipped binary
//! speaking the batch golden protocol end to end.

use optrules::core::json::{self, Json, Num};
use optrules::core::server::{serve, ServerConfig, ServerHandle};
use optrules::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;

fn config() -> EngineConfig {
    EngineConfig {
        buckets: 60,
        seed: 7,
        min_support: Ratio::percent(10),
        min_confidence: Ratio::percent(60),
        ..EngineConfig::default()
    }
}

fn engine(rows: u64, seed: u64) -> SharedEngine<Relation> {
    SharedEngine::with_config(BankGenerator::default().to_relation(rows, seed), config())
}

fn start(engine: SharedEngine<Relation>, config: ServerConfig) -> ServerHandle {
    serve(Arc::new(engine), "127.0.0.1:0", config).expect("bind loopback")
}

fn connect(handle: &ServerHandle) -> TcpStream {
    TcpStream::connect(handle.addr()).expect("connect to server")
}

/// One-shot client: write `input`, half-close, read every response
/// line to EOF — also exercising the half-closed-socket path on every
/// call.
fn roundtrip(handle: &ServerHandle, input: &str) -> Vec<String> {
    let mut stream = connect(handle);
    stream.write_all(input.as_bytes()).expect("send requests");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| line.expect("read response"))
        .collect()
}

/// Reads exactly one response line from an interactive connection.
fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.ends_with('\n'), "truncated response {line:?}");
    line.trim_end().to_string()
}

/// Pulls a `u64` field out of a `{"ok": {...}}` stats response line.
fn stats_field(line: &str, field: &str) -> u64 {
    let Ok(Json::Obj(envelope)) = Json::parse(line) else {
        panic!("unparseable stats response {line:?}");
    };
    let Some((_, Json::Obj(stats))) = envelope.iter().find(|(key, _)| key == "ok") else {
        panic!("stats response is not ok: {line:?}");
    };
    match stats.iter().find(|(key, _)| key == field) {
        Some((_, Json::Num(Num::UInt(value)))) => *value,
        other => panic!("stats field {field:?} missing or non-integer: {other:?}"),
    }
}

fn stats_line(handle: &ServerHandle) -> String {
    let lines = roundtrip(handle, "{\"cmd\":\"stats\"}\n");
    assert_eq!(lines.len(), 1);
    lines[0].clone()
}

/// The acceptance end-to-end: a warm second connection's identical
/// batch is answered byte-identically, entirely from cache (stats show
/// hits and zero new scans), and every response matches what
/// `run_spec` + the batch envelope produce for the same specs.
#[test]
fn cache_persists_across_connections_and_matches_run_spec() {
    let mut requests = String::new();
    let mut specs = Vec::new();
    for target in ["CardLoan", "AutoWithdraw", "OnlineBanking"] {
        specs.push(QuerySpec::boolean("Balance", target));
    }
    let mut avg = QuerySpec::average("CheckingAccount", "SavingAccount");
    avg.min_average = Some(Real(14_000.0));
    specs.push(avg);
    specs.push(QuerySpec::boolean("NoSuchAttr", "CardLoan"));
    for spec in &specs {
        requests.push_str(&json::encode_spec(spec));
        requests.push('\n');
    }

    // The protocol's promise, computed independently: each spec run
    // alone on a fresh engine, wrapped in the ok/error envelope.
    let reference: Vec<String> = {
        let engine = engine(8_000, 23);
        specs
            .iter()
            .map(|spec| match engine.run_spec(spec) {
                Ok(rules) => json::ok_envelope(json::rule_set_to_value(&rules)).encode(),
                Err(e) => json::error_envelope(e.to_string()).encode(),
            })
            .collect()
    };

    let handle = start(engine(8_000, 23), ServerConfig::default());
    let cold = roundtrip(&handle, &requests);
    assert_eq!(cold, reference, "cold TCP responses == run_spec");

    let after_cold = stats_line(&handle);
    let cold_scans = stats_field(&after_cold, "scans");
    let cold_bucketizations = stats_field(&after_cold, "bucketizations");
    assert!(cold_scans >= 1);

    // Second connection, same batch: byte-identical, served warm.
    let warm = roundtrip(&handle, &requests);
    assert_eq!(warm, cold, "warm responses byte-identical");
    let after_warm = stats_line(&handle);
    assert_eq!(
        stats_field(&after_warm, "scans"),
        cold_scans,
        "zero new scans for the warm connection"
    );
    assert_eq!(
        stats_field(&after_warm, "bucketizations"),
        cold_bucketizations,
        "zero new bucketizations for the warm connection"
    );
    assert!(
        stats_field(&after_warm, "scan_cache_hits") > stats_field(&after_cold, "scan_cache_hits"),
        "the warm connection registered cache hits"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_json_gets_an_error_and_the_connection_lives_on() {
    let handle = start(engine(2_000, 5), ServerConfig::default());
    let mut stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    stream.write_all(b"this is not json\n").expect("send");
    let response = read_line(&mut reader);
    assert!(
        response.starts_with("{\"error\":\"bad request"),
        "{response}"
    );

    // Unknown keys and bad control frames are errors too, same conn.
    stream
        .write_all(b"{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"},\"bogus\":1}\n")
        .expect("send");
    let response = read_line(&mut reader);
    assert!(response.contains("unknown key"), "{response}");
    stream.write_all(b"{\"cmd\":\"reboot\"}\n").expect("send");
    let response = read_line(&mut reader);
    assert!(response.contains("unknown cmd"), "{response}");

    // The connection still answers real queries afterwards.
    stream
        .write_all(b"{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"}}\n")
        .expect("send");
    let response = read_line(&mut reader);
    assert!(response.starts_with("{\"ok\":"), "{response}");

    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_line_errors_then_disconnects_without_wedging_the_server() {
    let handle = start(
        engine(2_000, 5),
        ServerConfig {
            max_line_bytes: 256,
            ..ServerConfig::default()
        },
    );
    let mut stream = connect(&handle);
    let long_line = format!("{}\n", "x".repeat(4096));
    stream.write_all(long_line.as_bytes()).expect("send");
    let lines: Vec<String> = BufReader::new(stream)
        .lines()
        .map(|line| line.expect("read response"))
        .collect();
    // Exactly one error response, then a clean disconnect (EOF).
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(
        lines[0].contains("request line exceeds 256 bytes"),
        "{lines:?}"
    );

    // The worker is not wedged: a fresh connection is served.
    let ok = roundtrip(
        &handle,
        "{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"}}\n",
    );
    assert_eq!(ok.len(), 1);
    assert!(ok[0].starts_with("{\"ok\":"), "{ok:?}");

    handle.shutdown();
    handle.join();
}

#[test]
fn interleaved_pipelined_requests_answer_in_order() {
    let handle = start(engine(3_000, 9), ServerConfig::default());
    // Specs, garbage, a control frame, and a failing spec interleaved
    // in one write: one response per non-blank line, in request order.
    let input = concat!(
        "{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"}}\n",
        "garbage\n",
        "\n", // blank: skipped, not answered
        "{\"cmd\":\"stats\"}\n",
        "{\"attr\":\"NoSuchAttr\",\"objective\":{\"bool\":\"CardLoan\"}}\n",
        "{\"attr\":\"Balance\",\"objective\":{\"bool\":\"AutoWithdraw\"}}\n",
    );
    let lines = roundtrip(&handle, input);
    assert_eq!(lines.len(), 5, "{lines:?}");
    assert!(
        lines[0].starts_with("{\"ok\":{\"attr\":\"Balance\""),
        "{lines:?}"
    );
    assert!(
        lines[1].starts_with("{\"error\":\"bad request"),
        "{lines:?}"
    );
    assert!(lines[2].starts_with("{\"ok\":{\"generation\""), "{lines:?}");
    assert!(lines[3].starts_with("{\"error\":"), "{lines:?}");
    assert!(
        lines[4].starts_with("{\"ok\":{\"attr\":\"Balance\""),
        "{lines:?}"
    );

    handle.shutdown();
    handle.join();
}

/// Cross-connection coalescing: concurrent clients issuing the same
/// cold spec are served by exactly one bucketization and one counting
/// scan — the singleflight barrier tests of `tests/concurrent_engine.rs`
/// extended to the TCP path. Deterministic regardless of timing:
/// concurrent misses coalesce on the in-flight computation and late
/// arrivals hit the cache.
#[test]
fn concurrent_identical_cold_specs_share_one_scan() {
    let handle = start(
        engine(30_000, 17),
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    );
    let request = "{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"}}\n";
    let barrier = std::sync::Barrier::new(4);
    let first = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    roundtrip(&handle, request)
                })
            })
            .collect();
        let responses: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for response in &responses {
            assert_eq!(response, &responses[0], "all clients see the same answer");
        }
        responses.into_iter().next().unwrap()
    });
    assert!(first[0].starts_with("{\"ok\":"), "{first:?}");

    let stats = stats_line(&handle);
    assert_eq!(stats_field(&stats, "scans"), 1, "{stats}");
    assert_eq!(stats_field(&stats, "bucketizations"), 1, "{stats}");

    handle.shutdown();
    handle.join();
}

/// Live appends over TCP: within one pipelined connection, order is
/// program order (a spec before the append mines the old generation,
/// a spec after it the new one, and the stats frame reflects exactly
/// what preceded it); other connections then see the new generation;
/// malformed rows error without appending anything.
#[test]
fn append_frames_apply_in_order_and_survive_connections() {
    let handle = start(engine(3_000, 9), ServerConfig::default());
    let row = "[3100.5,41,1200,15000,true,false,true]";
    let input = format!(
        concat!(
            "{{\"attr\":\"Balance\",\"objective\":{{\"bool\":\"CardLoan\"}}}}\n",
            "{{\"cmd\":\"append\",\"rows\":[{row},{row}]}}\n",
            "{{\"attr\":\"Balance\",\"objective\":{{\"bool\":\"CardLoan\"}}}}\n",
            "{{\"cmd\":\"append\",\"rows\":[[1,true]]}}\n",
            "{{\"cmd\":\"stats\"}}\n",
        ),
        row = row
    );
    let lines = roundtrip(&handle, &input);
    assert_eq!(lines.len(), 5, "{lines:?}");
    let total_rows = |line: &str| {
        let Ok(Json::Obj(envelope)) = Json::parse(line) else {
            panic!("unparseable response {line:?}");
        };
        let Some((_, Json::Obj(rules))) = envelope.iter().find(|(key, _)| key == "ok") else {
            panic!("response is not ok: {line:?}");
        };
        match rules.iter().find(|(key, _)| key == "total_rows") {
            Some((_, Json::Num(Num::UInt(rows)))) => *rows,
            other => panic!("total_rows missing: {other:?}"),
        }
    };
    assert_eq!(total_rows(&lines[0]), 3_000, "pre-append spec");
    assert_eq!(
        lines[1], "{\"ok\":{\"appended\":2,\"generation\":1,\"rows\":3002}}",
        "append ack bytes"
    );
    assert_eq!(total_rows(&lines[2]), 3_002, "post-append spec");
    assert!(
        lines[3].contains("row 0 has 2 cells"),
        "malformed row: {lines:?}"
    );
    assert_eq!(stats_field(&lines[4], "generation"), 1);
    assert_eq!(stats_field(&lines[4], "rows"), 3_002);

    // A fresh connection mines the new generation.
    let next = roundtrip(
        &handle,
        "{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"}}\n",
    );
    assert_eq!(total_rows(&next[0]), 3_002);

    handle.shutdown();
    handle.join();
}

/// Appends from concurrent connections serialize into a total order:
/// every row lands exactly once and the final generation counts every
/// append frame.
#[test]
fn concurrent_appends_serialize_without_losing_rows() {
    let handle = start(
        engine(2_000, 5),
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    );
    const CLIENTS: usize = 4;
    const APPENDS_PER_CLIENT: usize = 5;
    let barrier = std::sync::Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let handle = &handle;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..APPENDS_PER_CLIENT {
                    let lines = roundtrip(
                        handle,
                        "{\"cmd\":\"append\",\"rows\":[[1,2,3,4,true,false,true]]}\n",
                    );
                    assert!(
                        lines[0].starts_with("{\"ok\":{\"appended\":1,"),
                        "{lines:?}"
                    );
                }
            });
        }
    });
    let stats = stats_line(&handle);
    assert_eq!(
        stats_field(&stats, "generation"),
        (CLIENTS * APPENDS_PER_CLIENT) as u64
    );
    assert_eq!(
        stats_field(&stats, "rows"),
        2_000 + (CLIENTS * APPENDS_PER_CLIENT) as u64
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_frame_drains_idle_connections_and_join_returns() {
    let handle = start(engine(2_000, 5), ServerConfig::default());
    let addr = handle.addr();

    // An idle connection that has sent nothing.
    let idle = connect(&handle);

    // Another connection pipelines a spec and the shutdown frame.
    let lines = roundtrip(
        &handle,
        concat!(
            "{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"}}\n",
            "{\"cmd\":\"shutdown\"}\n",
        ),
    );
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].starts_with("{\"ok\":"), "{lines:?}");
    assert_eq!(lines[1], "{\"ok\":\"shutdown\"}");
    assert!(handle.is_shutting_down());

    // join returns: the idle connection was EOF'd, not waited on
    // forever, and the acceptor stopped.
    handle.join();
    let leftover: Vec<String> = BufReader::new(idle)
        .lines()
        .map(|line| line.expect("clean EOF"))
        .collect();
    assert!(leftover.is_empty(), "idle conn saw data: {leftover:?}");
    // The listener is gone; new connections are refused.
    assert!(TcpStream::connect(addr).is_err(), "listener still alive");
}

/// A shutdown frame from a client that vanishes without reading its
/// ack must still stop the server: the command is honored even when
/// writing the `{"ok":"shutdown"}` response fails.
#[test]
fn shutdown_survives_a_client_that_never_reads_the_ack() {
    let handle = start(engine(2_000, 5), ServerConfig::default());
    {
        let mut stream = connect(&handle);
        stream
            .write_all(b"{\"cmd\":\"shutdown\"}\n")
            .expect("send shutdown");
        // Drop both halves immediately: the server's ack write may hit
        // a closed socket.
    }
    // join returning is the proof; if the command were discarded on a
    // failed write this would hang (the test harness would time out).
    handle.join();
}

// ---------------------------------------------------------------------
// The shipped binary, end to end over TCP.
// ---------------------------------------------------------------------

mod binary {
    use super::*;
    use std::path::PathBuf;
    use std::process::{Child, Command, Stdio};

    fn bin() -> Command {
        Command::new(env!("CARGO_BIN_EXE_optrules"))
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("optrules-serve-{}-{name}.rel", std::process::id()))
    }

    struct Server {
        child: Child,
        addr: String,
    }

    /// Spawns `optrules serve` on an ephemeral port and parses the
    /// `listening on <addr>` line from its stdout.
    fn spawn_server(path: &str, extra: &[&str]) -> Server {
        let mut child = bin()
            .args([
                "serve",
                path,
                "--addr",
                "127.0.0.1:0",
                "--buckets",
                "100",
                "--min-support",
                "10",
                "--min-confidence",
                "60",
                "--seed",
                "7",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("serve spawns");
        let stdout = child.stdout.as_mut().expect("stdout piped");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("read listening line");
        let addr = first
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
            .to_string();
        Server { child, addr }
    }

    fn tcp_roundtrip(addr: &str, input: &str) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect to binary server");
        stream.write_all(input.as_bytes()).expect("send requests");
        stream.shutdown(Shutdown::Write).expect("half-close");
        BufReader::new(stream)
            .lines()
            .map(|line| line.expect("read response"))
            .collect()
    }

    /// Removes every `,"gauges":{…}` object from a response line. The
    /// gauges (uptime, live connections, in-flight batches) exist only
    /// when a server answers, so the batch-mode goldens lack them; the
    /// object holds no nested braces, so scanning to the first `}` is
    /// exact. The loop strips *all* occurrences — a coordinator stats
    /// line embeds one per shard plus its own.
    fn strip_gauges(line: &str) -> String {
        let mut out = line.to_string();
        while let Some(start) = out.find(",\"gauges\":{") {
            let close = out[start..].find('}').expect("gauges object closes");
            out.replace_range(start..start + close + 1, "");
        }
        out
    }

    /// The checked-in golden transcript over TCP: at any worker count,
    /// the server's responses to `tests/data/batch_specs.ndjson` are
    /// byte-identical to `optrules batch` (same golden file), the
    /// second connection is served warm, and the shutdown frame makes
    /// the process exit 0.
    #[test]
    fn serve_speaks_the_batch_golden_protocol_warm_and_exits_cleanly() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
        let specs = std::fs::read_to_string(dir.join("batch_specs.ndjson")).unwrap();
        let expected: Vec<String> = std::fs::read_to_string(dir.join("batch_expected.ndjson"))
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        let path = tmp("golden");
        let path_s = path.to_str().unwrap();
        let gen = bin()
            .args(["gen", "bank", path_s, "--rows", "20000", "--seed", "3"])
            .output()
            .expect("gen runs");
        assert!(gen.status.success());

        for workers in ["1", "4"] {
            let mut server = spawn_server(path_s, &["--workers", workers]);

            let cold = tcp_roundtrip(&server.addr, &specs);
            assert_eq!(cold, expected, "--workers {workers} diverged from golden");
            let warm = tcp_roundtrip(&server.addr, &specs);
            assert_eq!(warm, expected, "--workers {workers} warm run diverged");

            let stats = tcp_roundtrip(&server.addr, "{\"cmd\":\"stats\"}\n");
            assert_eq!(stats.len(), 1);
            assert!(
                stats_field(&stats[0], "scan_cache_hits") > 0,
                "warm run must hit the cache: {}",
                stats[0]
            );

            let bye = tcp_roundtrip(&server.addr, "{\"cmd\":\"shutdown\"}\n");
            assert_eq!(bye, ["{\"ok\":\"shutdown\"}"]);
            let status = server.child.wait().expect("server exits");
            assert!(status.success(), "graceful shutdown must exit 0");
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// The live golden pair over TCP: a fresh `optrules serve` process
    /// answers `tests/data/live_specs.ndjson` (specs + append/stats
    /// frames + malformed rows) byte-identically to `optrules batch`
    /// over the same relation — one wire contract, two transports.
    /// Also exercises `--write-timeout-secs` end to end as a valid
    /// flag.
    #[test]
    fn serve_speaks_the_live_golden_protocol() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
        let specs = std::fs::read_to_string(dir.join("live_specs.ndjson")).unwrap();
        let expected: Vec<String> = std::fs::read_to_string(dir.join("live_expected.ndjson"))
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        let path = tmp("live-golden");
        let path_s = path.to_str().unwrap();
        let gen = bin()
            .args(["gen", "bank", path_s, "--rows", "20000", "--seed", "3"])
            .output()
            .expect("gen runs");
        assert!(gen.status.success());

        let mut server = spawn_server(
            path_s,
            &["--cache-shards", "1", "--write-timeout-secs", "20"],
        );
        // Server stats answers carry a trailing `"gauges"` object
        // (uptime/connections/in-flight) that batch mode — the golden
        // — does not; strip it so the rest stays byte-compared.
        let lines: Vec<String> = tcp_roundtrip(&server.addr, &specs)
            .iter()
            .map(|line| strip_gauges(line))
            .collect();
        assert_eq!(lines, expected, "TCP live responses diverged from golden");

        let bye = tcp_roundtrip(&server.addr, "{\"cmd\":\"shutdown\"}\n");
        assert_eq!(bye, ["{\"ok\":\"shutdown\"}"]);
        assert!(server.child.wait().expect("server exits").success());
        std::fs::remove_file(&path).unwrap();
    }
}
