//! Crash-recovery harness: `kill -9` a serving `optrules` process in
//! the middle of a stream of acknowledged TCP appends, restart over
//! the same `--data-dir`, and assert **zero acknowledged-row loss**:
//!
//! * every row whose append was acked is present after recovery;
//! * the recovered row count is a whole number of frames between the
//!   acked floor and the sent ceiling (a torn tail frame is dropped,
//!   never half-applied);
//! * the generation counter resumes at exactly one per applied frame;
//! * queries over the recovered store answer byte-identically to a
//!   freshly written flat relation holding the same rows (the oracle);
//! * a graceful `flush` + `shutdown` leaves an empty WAL behind.
//!
//! `OPTRULES_WAL_CHUNK=3` makes the WAL writer dribble frames out a
//! few bytes at a time, so a random kill lands mid-frame with high
//! probability — exercising the torn-tail replay path, not just
//! between-frame boundaries.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

const BASE_ROWS: u64 = 4000;
const ROWS_PER_FRAME: u64 = 8;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_optrules"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("optrules-crash-{}-{name}", std::process::id()))
}

/// Deterministic xorshift64 — the root package has no RNG dependency,
/// and the kill points must vary between iterations while staying
/// reproducible from the printed seed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The rows of append frame `frame` (0-based), deterministically
/// derived so the oracle can regenerate exactly the frames that
/// survived. Values are integral so the JSON round trip is exact.
fn frame_rows(frame: u64) -> Vec<(Vec<f64>, Vec<bool>)> {
    (0..ROWS_PER_FRAME)
        .map(|j| {
            let v = frame * ROWS_PER_FRAME + j;
            (
                vec![
                    ((v * 37) % 20_000) as f64,
                    (20 + v % 60) as f64,
                    ((v * 13) % 5_000) as f64,
                    ((v * 101) % 40_000) as f64,
                ],
                vec![
                    v.is_multiple_of(2),
                    v.is_multiple_of(3),
                    v.is_multiple_of(5),
                ],
            )
        })
        .collect()
}

fn frame_json(frame: u64) -> String {
    let rows: Vec<String> = frame_rows(frame)
        .iter()
        .map(|(nums, bools)| {
            let cells: Vec<String> = nums
                .iter()
                .map(|n| format!("{n}"))
                .chain(bools.iter().map(|b| b.to_string()))
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!(r#"{{"cmd":"append","rows":[{}]}}"#, rows.join(","))
}

/// Runs `optrules batch` over `extra_args` with `input` on stdin and
/// returns stdout, asserting success.
fn batch_stdin(base: &Path, extra_args: &[&str], input: &str) -> String {
    let mut child = bin()
        .arg("batch")
        .arg(base)
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("batch spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("batch runs");
    assert!(
        out.status.success(),
        "batch {extra_args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Pulls `"key":<u64>` out of a stats response line.
fn stat_field(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = line
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {line}"));
    line[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Spawns `optrules serve` over `data_dir` and returns the child, the
/// bound address parsed from its first stdout line, and the stdout
/// reader — which the caller must keep alive, or the server's own
/// shutdown banner hits a closed pipe.
fn spawn_server(
    base: &Path,
    data_dir: &Path,
    wal_sync: &str,
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = bin()
        .arg("serve")
        .arg(base)
        .args(["--addr", "127.0.0.1:0", "--spill-rows", "64"])
        .args(["--data-dir", data_dir.to_str().unwrap()])
        .args(["--wal-sync", wal_sync])
        .env("OPTRULES_WAL_CHUNK", "3")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server spawns");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner reads");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (child, addr, reader)
}

/// Streams append frames at the server until the killer thread SIGKILLs
/// it; returns (frames sent, frames acked).
fn append_until_killed(addr: &str, child: Child, kill_after: Duration) -> (u64, u64) {
    let (tx, rx) = mpsc::channel::<Child>();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(kill_after);
        let mut child = rx.recv().expect("child handed over");
        let _ = child.kill(); // SIGKILL on unix — no cleanup runs
        let _ = child.wait();
    });
    tx.send(child).unwrap();

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut sent = 0u64;
    let mut acked = 0u64;
    let mut line = String::new();
    // Cap far above what any kill delay allows; the loop exits when the
    // dead server resets the connection.
    for frame in 0..100_000u64 {
        if writeln!(writer, "{}", frame_json(frame))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        sent += 1;
        line.clear();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 && line.contains("\"ok\"") => acked += 1,
            _ => break,
        }
    }
    killer.join().unwrap();
    (sent, acked)
}

/// Writes a flat relation file holding the base rows plus the first
/// `frames` append frames — the ground truth for what recovery must
/// reconstruct.
fn build_oracle(base: &Path, oracle: &Path, frames: u64) {
    use optrules::prelude::*;
    let rel = FileRelation::open(base).unwrap();
    let mut writer = FileRelationWriter::create(oracle, rel.schema().clone()).unwrap();
    let mut copy_err = None;
    rel.for_each_row(&mut |_, nums, bools| {
        if copy_err.is_none() {
            copy_err = writer.push_row(nums, bools).err();
        }
    })
    .unwrap();
    assert!(copy_err.is_none(), "{copy_err:?}");
    for frame in 0..frames {
        for (nums, bools) in frame_rows(frame) {
            writer.push_row(&nums, &bools).unwrap();
        }
    }
    writer.finish().unwrap();
}

const SPEC: &str = r#"{"attr":"Balance","objective":{"bool":"CardLoan"},"buckets":100}"#;

#[test]
fn kill_9_mid_append_loses_no_acked_rows() {
    let base = tmp("base.rel");
    let status = bin()
        .args(["gen", "bank"])
        .arg(&base)
        .args(["--rows", "4000", "--seed", "3"])
        .status()
        .unwrap();
    assert!(status.success());

    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    for (iteration, wal_sync) in ["always", "batch", "always", "batch"].iter().enumerate() {
        let dir = tmp(&format!("data-{iteration}"));
        let _ = std::fs::remove_dir_all(&dir);
        let durable_args = ["--data-dir", dir.to_str().unwrap(), "--wal-sync", wal_sync];

        let (child, addr, _stdout) = spawn_server(&base, &dir, wal_sync);
        let kill_after = Duration::from_millis(10 + rng.below(110));
        let (sent, acked) = append_until_killed(&addr, child, kill_after);
        assert!(sent >= acked, "acks cannot outrun sends");

        // Restart over the same directory: recovery replays the WAL
        // tail on top of the spilled segments.
        let out = batch_stdin(&base, &durable_args, "{\"cmd\":\"stats\"}\n");
        let rows = stat_field(&out, "rows");
        let generation = stat_field(&out, "generation");
        let frames = (rows - BASE_ROWS) / ROWS_PER_FRAME;
        assert!(
            rows >= BASE_ROWS + acked * ROWS_PER_FRAME,
            "{wal_sync} iteration {iteration}: lost acked rows \
             (sent {sent}, acked {acked}, recovered {rows}): {out}"
        );
        assert!(
            rows <= BASE_ROWS + sent * ROWS_PER_FRAME,
            "recovered rows that were never sent ({sent} sent): {out}"
        );
        assert_eq!(
            (rows - BASE_ROWS) % ROWS_PER_FRAME,
            0,
            "a frame must apply in full or not at all: {out}"
        );
        assert_eq!(
            generation, frames,
            "one generation per applied frame: {out}"
        );

        // Queries over the recovered store answer exactly as a flat
        // relation holding the same rows.
        let oracle = tmp(&format!("oracle-{iteration}.rel"));
        build_oracle(&base, &oracle, frames);
        let recovered = batch_stdin(&base, &durable_args, &format!("{SPEC}\n"));
        let expected = batch_stdin(&oracle, &[], &format!("{SPEC}\n"));
        assert_eq!(recovered, expected, "{wal_sync} iteration {iteration}");

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&oracle);
    }
    let _ = std::fs::remove_file(&base);
}

#[test]
fn graceful_flush_and_shutdown_leave_an_empty_wal() {
    let base = tmp("graceful-base.rel");
    let status = bin()
        .args(["gen", "bank"])
        .arg(&base)
        .args(["--rows", "4000", "--seed", "3"])
        .status()
        .unwrap();
    assert!(status.success());
    let dir = tmp("graceful-data");
    let _ = std::fs::remove_dir_all(&dir);

    let (mut child, addr, _stdout) = spawn_server(&base, &dir, "always");
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut line = String::new();
    for frame in 0..2u64 {
        writeln!(writer, "{}", frame_json(frame)).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"appended\":8"), "{line}");
    }
    writeln!(writer, r#"{{"cmd":"flush"}}"#).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), r#"{"ok":{"flushed":true,"generation":2}}"#);
    writeln!(writer, r#"{{"cmd":"shutdown"}}"#).unwrap();
    let status = child.wait().expect("server exits");
    assert!(status.success(), "graceful shutdown exits 0");

    // The next open has nothing to replay: the flush (and the shutdown
    // drain's checkpoint) truncated the WAL.
    let out = batch_stdin(
        &base,
        &["--data-dir", dir.to_str().unwrap()],
        "{\"cmd\":\"stats\"}\n",
    );
    assert_eq!(stat_field(&out, "rows"), BASE_ROWS + 2 * ROWS_PER_FRAME);
    assert_eq!(stat_field(&out, "generation"), 2);
    assert_eq!(stat_field(&out, "wal_bytes"), 8, "{out}");
    assert_eq!(stat_field(&out, "unflushed_rows"), 0, "{out}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&base);
}
