//! Empirical validation of the Section 3.4 approximation bounds
//! (Table I): bucketed optima must stay within the analytic error
//! window around the finest-granularity optimum, and the window must
//! shrink as the bucket count grows.

use optrules::bucketing::{
    count_buckets, equi_depth_cuts, finest_cuts, CountSpec, EquiDepthConfig,
};
use optrules::core::approx;
use optrules::prelude::*;

struct Optima {
    support: f64,
    confidence: f64,
}

fn exact_optimum(rel: &Relation, theta: Ratio) -> Optima {
    let attr = rel.schema().numeric("A").unwrap();
    let target = Condition::BoolIs(rel.schema().boolean("C").unwrap(), true);
    let spec = finest_cuts(rel, attr).unwrap();
    let counts = count_buckets(rel, &spec, &CountSpec::simple(attr, target)).unwrap();
    let (_, cc) = counts.compact();
    let r = optimize_support(&cc.u, &cc.bool_v[0], theta)
        .unwrap()
        .expect("planted band is confident");
    Optima {
        support: r.support(counts.total_rows),
        confidence: r.confidence(),
    }
}

fn bucketed_optimum(rel: &Relation, m: usize, theta: Ratio) -> Option<Optima> {
    let attr = rel.schema().numeric("A").unwrap();
    let target = Condition::BoolIs(rel.schema().boolean("C").unwrap(), true);
    let spec = equi_depth_cuts(rel, attr, &EquiDepthConfig::paper(m, 31)).unwrap();
    let counts = count_buckets(rel, &spec, &CountSpec::simple(attr, target)).unwrap();
    let (_, cc) = counts.compact();
    optimize_support(&cc.u, &cc.bool_v[0], theta)
        .unwrap()
        .map(|r| Optima {
            support: r.support(counts.total_rows),
            confidence: r.confidence(),
        })
}

/// The §3.4 claim, measured: with the Table I configuration the
/// bucketed optimized-support rule stays within the paper's relative
/// error bounds (evaluated at the realized optimum, with slack for the
/// sampling randomness of Algorithm 3.1 — the analytic bounds assume
/// exactly equi-depth buckets).
#[test]
fn bucketed_optimum_within_paper_bounds() {
    let rel = PlantedRangeGenerator::table1().to_relation(150_000, 8);
    let theta = Ratio::percent(68);
    let exact = exact_optimum(&rel, theta);
    assert!(
        exact.support > 0.25 && exact.support < 0.40,
        "{}",
        exact.support
    );

    for m in [50usize, 100, 500, 1000] {
        let approx_opt = bucketed_optimum(&rel, m, theta).expect("band visible at this M");
        let bounds = approx::paper_bounds(m, exact.support, exact.confidence);
        // Almost-equi-depth buckets can be up to ~50 % off nominal size
        // (§3.2), so allow the analytic window to stretch by that factor.
        let slack = 1.5;
        let sup_lo = exact.support - slack * (exact.support - bounds.support_lo);
        let sup_hi = exact.support + slack * (bounds.support_hi - exact.support);
        assert!(
            approx_opt.support >= sup_lo && approx_opt.support <= sup_hi,
            "M={m}: support {} outside [{sup_lo}, {sup_hi}]",
            approx_opt.support
        );
        let conf_lo = exact.confidence - slack * (exact.confidence - bounds.conf_lo);
        assert!(
            approx_opt.confidence >= conf_lo,
            "M={m}: confidence {} below {conf_lo}",
            approx_opt.confidence
        );
    }
}

/// Error must (weakly) shrink with more buckets — the monotone shape of
/// Table I.
#[test]
fn error_shrinks_with_bucket_count() {
    let rel = PlantedRangeGenerator::table1().to_relation(150_000, 21);
    let theta = Ratio::percent(68);
    let exact = exact_optimum(&rel, theta);
    let err = |m: usize| -> f64 {
        let a = bucketed_optimum(&rel, m, theta).expect("visible");
        (a.support - exact.support).abs() / exact.support
    };
    let coarse = err(10);
    let mid = err(100);
    let fine = err(1000);
    assert!(
        coarse >= mid * 0.5 && mid >= fine * 0.5,
        "errors not shrinking: {coarse} {mid} {fine}"
    );
    assert!(fine < 0.02, "fine-grained error {fine} too large");
}

/// The paper's bound formulas themselves: the mass-transfer window is
/// never wider than the clamped paper window on the support axis, and
/// both contain the optimum.
#[test]
fn analytic_tables_are_consistent() {
    for row in approx::table1() {
        assert!(row.paper.support_lo <= 0.30 && 0.30 <= row.paper.support_hi);
        assert!(row.mass.support_lo <= 0.30 && 0.30 <= row.mass.support_hi);
        assert!(row.mass.conf_lo <= 0.70 && 0.70 <= row.mass.conf_hi);
        // Paper support window equals the mass window for equi-depth
        // buckets (2/M of support on each side).
        assert!((row.paper.support_lo - row.mass.support_lo).abs() < 1e-12);
        assert!((row.paper.support_hi - row.mass.support_hi).abs() < 1e-12);
    }
}
