//! Algorithm 3.2 consistency: partitioned parallel counting must be
//! indistinguishable from the sequential scan, for both storage
//! backends and any thread count, including through the full miner.

use optrules::bucketing::{
    count_buckets, count_buckets_parallel, equi_depth_cuts, CountSpec, EquiDepthConfig,
};
use optrules::prelude::*;

fn spec_and_what(rel: &impl RandomAccess) -> (optrules::bucketing::BucketSpec, CountSpec) {
    let attr = rel.schema().numeric("N0").unwrap();
    let spec = equi_depth_cuts(rel, attr, &EquiDepthConfig::paper(256, 3)).unwrap();
    let what = CountSpec {
        attr,
        presumptive: Condition::True,
        bool_targets: rel
            .schema()
            .boolean_attrs()
            .map(|b| Condition::BoolIs(b, true))
            .collect(),
        sum_targets: rel.schema().numeric_attrs().skip(1).take(2).collect(),
    };
    (spec, what)
}

#[test]
fn parallel_counts_equal_sequential_in_memory() {
    let rel = UniformWorkload::paper().to_relation(30_011, 5);
    let (spec, what) = spec_and_what(&rel);
    let seq = count_buckets(&rel, &spec, &what).unwrap();
    for threads in [2usize, 3, 5, 8] {
        let par = count_buckets_parallel(&rel, &spec, &what, threads).unwrap();
        assert_eq!(par.u, seq.u, "u mismatch at {threads} threads");
        assert_eq!(par.bool_v, seq.bool_v, "v mismatch at {threads} threads");
        assert_eq!(par.ranges, seq.ranges);
        assert_eq!(par.total_rows, seq.total_rows);
        for (ps, ss) in par.sums.iter().zip(&seq.sums) {
            for (a, b) in ps.iter().zip(ss) {
                assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0));
            }
        }
    }
}

#[test]
fn parallel_counts_equal_sequential_file_backed() {
    let path = std::env::temp_dir().join(format!(
        "optrules-par-consistency-{}.rel",
        std::process::id()
    ));
    let rel = UniformWorkload::paper().to_file(&path, 20_000, 5).unwrap();
    let (spec, what) = spec_and_what(&rel);
    let seq = count_buckets(&rel, &spec, &what).unwrap();
    for threads in [2usize, 4] {
        let par = count_buckets_parallel(&rel, &spec, &what, threads).unwrap();
        assert_eq!(par.u, seq.u);
        assert_eq!(par.bool_v, seq.bool_v);
        assert_eq!(par.total_rows, seq.total_rows);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn engine_results_independent_of_thread_count() {
    let rel = BankGenerator::default().to_relation(15_000, 19);
    let mut engine = Engine::with_config(
        &rel,
        EngineConfig {
            buckets: 128,
            seed: 77,
            min_support: Ratio::percent(10),
            min_confidence: Ratio::percent(60),
            ..EngineConfig::default()
        },
    );
    let mut results = Vec::new();
    for threads in [1usize, 2, 4] {
        // No clear_cache needed: the thread count is part of the scan
        // key, so each thread count runs its own fresh scan.
        results.push(
            engine
                .query("Balance")
                .objective_is("CardLoan")
                .threads(threads)
                .run()
                .unwrap(),
        );
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}
