//! End-to-end pipeline tests: relation → buckets → optimized rules,
//! validated against exhaustive ground truth and across storage
//! backends.

use optrules::bucketing::{count_buckets, equi_depth_cuts, CountSpec, EquiDepthConfig};
use optrules::core::naive::{optimize_confidence_naive, optimize_support_naive};
use optrules::prelude::*;

/// Buckets + optimizers on a planted relation: the O(M) algorithms must
/// agree exactly with the O(M²) baselines on the same counts.
#[test]
fn fast_equals_naive_on_real_bucket_counts() {
    let rel = PlantedRangeGenerator::new((0.2, 0.5), 0.8, 0.2).to_relation(30_000, 42);
    let attr = rel.schema().numeric("A").unwrap();
    let target = Condition::BoolIs(rel.schema().boolean("C").unwrap(), true);
    for m in [10usize, 57, 200, 1000] {
        let spec = equi_depth_cuts(&rel, attr, &EquiDepthConfig::paper(m, 7)).unwrap();
        let counts = count_buckets(&rel, &spec, &CountSpec::simple(attr, target.clone())).unwrap();
        let (_, cc) = counts.compact();
        let (u, v) = (&cc.u, &cc.bool_v[0]);
        let n = counts.total_rows;
        for min_sup_pct in [1u64, 10, 30] {
            let w = Ratio::percent(min_sup_pct).min_count(n);
            assert_eq!(
                optimize_confidence(u, v, w).unwrap(),
                optimize_confidence_naive(u, v, w).unwrap(),
                "confidence mismatch at m={m} minsup={min_sup_pct}%"
            );
        }
        for theta_pct in [30u64, 50, 75] {
            let theta = Ratio::percent(theta_pct);
            assert_eq!(
                optimize_support(u, v, theta).unwrap(),
                optimize_support_naive(u, v, theta).unwrap(),
                "support mismatch at m={m} θ={theta_pct}%"
            );
        }
    }
}

/// File-backed and in-memory storage must yield identical mining
/// results for the same data and seed.
#[test]
fn file_backed_mining_matches_in_memory() {
    let gen = BankGenerator::default();
    let mem = gen.to_relation(20_000, 9);
    let path = std::env::temp_dir().join(format!("optrules-e2e-file-{}.rel", std::process::id()));
    let file = gen.to_file(&path, 20_000, 9).unwrap();

    let config = EngineConfig {
        buckets: 100,
        min_support: Ratio::percent(10),
        min_confidence: Ratio::percent(60),
        seed: 123,
        ..EngineConfig::default()
    };

    let from_mem = Engine::with_config(&mem, config)
        .query("Balance")
        .objective_is("CardLoan")
        .run()
        .unwrap();
    let from_file = Engine::with_config(&file, config)
        .query("Balance")
        .objective_is("CardLoan")
        .run()
        .unwrap();
    assert_eq!(from_mem, from_file);
    std::fs::remove_file(&path).unwrap();
}

/// Mining twice with the same seed is deterministic; a different seed
/// may move bucket boundaries but must keep the headline result stable
/// on strongly planted data.
#[test]
fn mining_determinism_and_seed_stability() {
    let rel = PlantedRangeGenerator::new((0.4, 0.7), 0.9, 0.05).to_relation(40_000, 4);
    let config = EngineConfig {
        buckets: 250,
        min_support: Ratio::percent(5),
        min_confidence: Ratio::percent(80),
        seed: 555,
        ..EngineConfig::default()
    };
    // Two independent engines (no shared cache) must agree exactly.
    let mine = |cfg: EngineConfig| {
        Engine::with_config(&rel, cfg)
            .query("A")
            .objective_is("C")
            .run()
            .unwrap()
    };
    let a = mine(config);
    let b = mine(config);
    assert_eq!(a, b);

    let d = mine(EngineConfig {
        seed: 556,
        ..config
    });
    let ra = a.optimized_support().unwrap().clone();
    let rd = d.optimized_support().unwrap().clone();
    // Both seeds must find (approximately) the planted band. θ = 80 %
    // admits widening by up to 4 % support (0.3·(0.9−0.8)/(0.8−0.05)),
    // which can land entirely on one edge.
    for r in [&ra, &rd] {
        assert!(
            (r.value_range.0 - 0.4).abs() < 0.05,
            "left {:?}",
            r.value_range
        );
        assert!(
            (r.value_range.1 - 0.7).abs() < 0.05,
            "right {:?}",
            r.value_range
        );
    }
}

/// The facade's one-shot quickstart path stays green (doc example
/// mirror, with stronger assertions).
#[test]
fn quickstart_pipeline() {
    let schema = Schema::builder()
        .numeric("Balance")
        .boolean("CardLoan")
        .build();
    let mut rel = Relation::new(schema);
    for i in 0..5000u64 {
        let balance = (i % 100) as f64 * 100.0;
        let loan = (3000.0..=7000.0).contains(&balance) && i % 3 != 0;
        rel.push_row(&[balance], &[loan]).unwrap();
    }
    let mut engine = Engine::with_config(
        rel,
        EngineConfig {
            buckets: 50,
            min_support: Ratio::percent(10),
            min_confidence: Ratio::percent(60),
            ..EngineConfig::default()
        },
    );
    let mined = engine
        .query("Balance")
        .objective_is("CardLoan")
        .run()
        .unwrap();
    let sup = mined.optimized_support().unwrap();
    assert!(sup.confidence() >= 0.60);
    // In-band loan rate is 2/3; the band spans 41 of 100 balance values.
    assert!(sup.support() > 0.3, "support {}", sup.support());
    let conf = mined.optimized_confidence().unwrap();
    assert!(conf.support() >= 0.0999);
    assert!(conf.confidence() >= sup.confidence() - 1e-9);
}

/// Optimized-confidence and optimized-support rules are duals: the
/// confidence-optimal range at the support the support-rule achieved
/// must have confidence ≥ the support-rule's (sanity linking the two).
#[test]
fn rule_duality_sanity() {
    let rel = PlantedRangeGenerator::table1().to_relation(25_000, 77);
    let attr = rel.schema().numeric("A").unwrap();
    let target = Condition::BoolIs(rel.schema().boolean("C").unwrap(), true);
    let spec = equi_depth_cuts(&rel, attr, &EquiDepthConfig::paper(300, 5)).unwrap();
    let counts = count_buckets(&rel, &spec, &CountSpec::simple(attr, target)).unwrap();
    let (_, cc) = counts.compact();
    let sup_rule = optimize_support(&cc.u, &cc.bool_v[0], Ratio::percent(60))
        .unwrap()
        .expect("planted band is confident");
    let conf_rule = optimize_confidence(&cc.u, &cc.bool_v[0], sup_rule.sup_count)
        .unwrap()
        .expect("that support level is feasible");
    assert!(
        conf_rule.hits * sup_rule.sup_count >= sup_rule.hits * conf_rule.sup_count,
        "confidence-optimal at the same support must be at least as confident"
    );
}
