//! Fault injection for the sharded topology: three real `optrules
//! serve` shard processes behind a real `optrules coord` process,
//! SIGKILL one shard mid-batch, and assert the coordinator degrades —
//! warm specs still answer byte-identically, cold specs that need the
//! dead shard fail with the structured `{"error":{"shard":i,…}}`
//! envelope, the coordinator never goes down, and it recovers the
//! moment the shard is restarted on its old address. Finally the
//! coordinator's shutdown must drain the surviving shards even though
//! one backend is (again) already dead.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_optrules"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "optrules-coord-fault-{}-{name}.rel",
        std::process::id()
    ))
}

struct Server {
    child: Child,
    addr: String,
}

/// Spawns a subcommand that prints `listening on <addr>` and parses
/// the bound address from its stdout.
fn spawn_listening(args: &[&str]) -> Server {
    let mut child = bin()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("process spawns");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("read listening line");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
        .to_string();
    Server { child, addr }
}

fn spawn_shard(path: &str, addr: &str) -> Server {
    spawn_listening(&[
        "serve",
        path,
        "--addr",
        addr,
        "--buckets",
        "80",
        "--min-support",
        "10",
        "--min-confidence",
        "60",
        "--seed",
        "7",
    ])
}

fn roundtrip(addr: &str, input: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| line.expect("read"))
        .collect()
}

const WARM_SPEC: &str = "{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"}}\n";
const COLD_SPEC: &str =
    "{\"attr\":\"CheckingAccount\",\"objective\":{\"bool\":\"AutoWithdraw\"}}\n";

#[test]
fn killing_a_shard_degrades_gracefully_and_recovers() {
    // One bank relation, sliced into three shard files whose
    // concatenation is the original (also exercising `optrules slice`).
    let full = tmp("full");
    let full_s = full.to_str().unwrap();
    let gen = bin()
        .args(["gen", "bank", full_s, "--rows", "6000", "--seed", "3"])
        .output()
        .expect("gen runs");
    assert!(gen.status.success());
    let mut shard_paths = Vec::new();
    for (i, (start, end)) in [(0, 2000), (2000, 4000), (4000, 6000)].iter().enumerate() {
        let path = tmp(&format!("shard{i}"));
        let out = bin()
            .args([
                "slice",
                full_s,
                path.to_str().unwrap(),
                "--start",
                &start.to_string(),
                "--end",
                &end.to_string(),
            ])
            .output()
            .expect("slice runs");
        assert!(out.status.success(), "{out:?}");
        shard_paths.push(path);
    }

    // The single-node oracle over the unsliced rows.
    let mut single = spawn_shard(full_s, "127.0.0.1:0");
    let warm_expected = roundtrip(&single.addr, WARM_SPEC);
    let cold_expected = roundtrip(&single.addr, COLD_SPEC);

    let mut shards: Vec<Server> = shard_paths
        .iter()
        .map(|p| spawn_shard(p.to_str().unwrap(), "127.0.0.1:0"))
        .collect();
    let shard_list = shards
        .iter()
        .map(|s| s.addr.clone())
        .collect::<Vec<_>>()
        .join(",");
    let mut coord = spawn_listening(&[
        "coord",
        "--shards",
        &shard_list,
        "--buckets",
        "80",
        "--min-support",
        "10",
        "--min-confidence",
        "60",
        "--seed",
        "7",
        "--retry-backoff-ms",
        "10",
    ]);

    // Warm up, verifying byte-identity against the single node.
    assert_eq!(roundtrip(&coord.addr, WARM_SPEC), warm_expected);

    // SIGKILL the middle shard, then send one pipelined batch mixing a
    // warm spec and a cold one that needs the dead shard.
    shards[1].child.kill().expect("kill -9 shard 1");
    shards[1].child.wait().expect("reap shard 1");
    let mixed = roundtrip(&coord.addr, &format!("{WARM_SPEC}{COLD_SPEC}"));
    assert_eq!(mixed.len(), 2, "{mixed:?}");
    assert_eq!(
        mixed[0], warm_expected[0],
        "warm spec must survive the dead shard byte-identically"
    );
    assert!(
        mixed[1].starts_with("{\"error\":{\"shard\":1,"),
        "cold spec must fail with the structured shard error: {}",
        mixed[1]
    );

    // Zero downtime: the coordinator keeps answering, and its stats
    // frame names the dead shard in the same structured form.
    assert_eq!(roundtrip(&coord.addr, WARM_SPEC), warm_expected);
    let stats = roundtrip(&coord.addr, "{\"cmd\":\"stats\"}\n");
    assert!(
        stats[0].starts_with("{\"error\":{\"shard\":1,"),
        "stats must report the dead shard: {}",
        stats[0]
    );

    // Restart the shard on its old address: the cold spec now succeeds
    // and matches the single-node answer exactly.
    shards[1] = spawn_shard(shard_paths[1].to_str().unwrap(), &shards[1].addr);
    assert_eq!(
        roundtrip(&coord.addr, COLD_SPEC),
        cold_expected,
        "recovered shard must restore byte-identity"
    );
    let stats = roundtrip(&coord.addr, "{\"cmd\":\"stats\"}\n");
    assert!(stats[0].starts_with("{\"ok\":"), "{stats:?}");
    assert!(stats[0].contains("\"shard_errors\":"), "{stats:?}");

    // Kill a different shard and shut the coordinator down: the drain
    // must tolerate the dead backend (in parallel) and still stop the
    // survivors.
    shards[0].child.kill().expect("kill shard 0");
    shards[0].child.wait().expect("reap shard 0");
    let bye = roundtrip(&coord.addr, "{\"cmd\":\"shutdown\"}\n");
    assert_eq!(bye, ["{\"ok\":\"shutdown\"}"]);
    assert!(
        coord.child.wait().expect("coordinator exits").success(),
        "graceful coordinator shutdown must exit 0 with a dead shard"
    );
    assert!(shards[1].child.wait().expect("shard 1 exits").success());
    assert!(shards[2].child.wait().expect("shard 2 exits").success());

    let bye = roundtrip(&single.addr, "{\"cmd\":\"shutdown\"}\n");
    assert_eq!(bye, ["{\"ok\":\"shutdown\"}"]);
    assert!(single.child.wait().expect("single exits").success());

    std::fs::remove_file(&full).unwrap();
    for path in shard_paths {
        std::fs::remove_file(path).unwrap();
    }
}
