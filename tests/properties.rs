//! Property-based tests (proptest) on the core invariants, spanning
//! crates through the public facade.

use optrules::bucketing::{count_buckets, CountSpec};
use optrules::core::kadane::max_gain_range;
use optrules::core::naive::{optimize_confidence_naive, optimize_support_naive};
use optrules::core::support::effective_indices;
use optrules::geometry::{upper_hull, HullTree, Point};
use optrules::prelude::*;
use proptest::prelude::*;

/// Strategy: bucket series (u, v) with 1 ≤ u_i ≤ 32, 0 ≤ v_i ≤ u_i.
fn uv_series() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    prop::collection::vec((1u64..=32, 0.0f64..=1.0), 1..48).prop_map(|pairs| {
        let u: Vec<u64> = pairs.iter().map(|&(ui, _)| ui).collect();
        let v: Vec<u64> = pairs
            .iter()
            .map(|&(ui, frac)| ((ui as f64) * frac).round() as u64)
            .collect();
        (u, v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 4.1: the hull-tangent optimizer equals exhaustive search,
    /// including tie-breaks.
    #[test]
    fn confidence_optimizer_equals_naive((u, v) in uv_series(), w_frac in 0.0f64..=1.1) {
        let total: u64 = u.iter().sum();
        let w = (total as f64 * w_frac) as u64;
        prop_assert_eq!(
            optimize_confidence(&u, &v, w).unwrap(),
            optimize_confidence_naive(&u, &v, w).unwrap()
        );
    }

    /// Theorem 4.2: Algorithms 4.3/4.4 equal exhaustive search.
    #[test]
    fn support_optimizer_equals_naive((u, v) in uv_series(), theta_pct in 0u64..=100) {
        let theta = Ratio::percent(theta_pct);
        prop_assert_eq!(
            optimize_support(&u, &v, theta).unwrap(),
            optimize_support_naive(&u, &v, theta).unwrap()
        );
    }

    /// Lemma 4.1: the optimized-support range always starts at an
    /// effective index.
    #[test]
    fn optimal_support_starts_effective((u, v) in uv_series(), theta_pct in 1u64..=99) {
        let theta = Ratio::percent(theta_pct);
        if let Some(r) = optimize_support(&u, &v, theta).unwrap() {
            let eff = effective_indices(&u, &v, theta).unwrap();
            prop_assert!(eff.contains(&r.s), "start {} not effective ({:?})", r.s, eff);
        }
    }

    /// The optimized-support range (max |I| s.t. conf ≥ θ) always
    /// contains at least as many tuples as Kadane's max-gain range when
    /// the latter is itself confident.
    #[test]
    fn kadane_never_beats_optimized_support((u, v) in uv_series(), theta_pct in 1u64..=99) {
        let theta = Ratio::percent(theta_pct);
        let opt = optimize_support(&u, &v, theta).unwrap();
        let kad = max_gain_range(&u, &v, theta).unwrap();
        if let (Some(o), Some(k)) = (opt, kad) {
            if k.gain >= 0 {
                let k_sup: u64 = u[k.s..=k.t].iter().sum();
                prop_assert!(o.sup_count >= k_sup, "opt {o:?} vs kadane {k:?}");
            }
        }
    }

    /// Hull tree restoration equals a fresh monotone-chain hull of every
    /// suffix.
    #[test]
    fn hull_tree_equals_suffix_hulls(ys in prop::collection::vec(0u32..1000, 1..80)) {
        let points: Vec<Point> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| Point::new(i as f64, y as f64))
            .collect();
        let mut tree = HullTree::build(&points);
        for i in 0..points.len() {
            tree.advance_to(i);
            let got = tree.hull_left_to_right();
            let want: Vec<usize> = upper_hull(&points[i..]).into_iter().map(|k| k + i).collect();
            prop_assert_eq!(&got, &want, "suffix {}", i);
        }
    }

    /// Bucket counting conserves tuples: Σu = rows passing the filter,
    /// v ≤ u per bucket, observed ranges nested in bucket bounds.
    #[test]
    fn counting_conservation(values in prop::collection::vec(0.0f64..100.0, 1..300),
                             cuts in prop::collection::vec(0.0f64..100.0, 0..8)) {
        let schema = Schema::builder().numeric("X").boolean("C").build();
        let mut rel = Relation::new(schema);
        for (i, &x) in values.iter().enumerate() {
            rel.push_row(&[x], &[i % 3 == 0]).unwrap();
        }
        let spec = BucketSpec::from_cuts(cuts);
        let attr = NumAttr(0);
        let what = CountSpec::simple(attr, Condition::BoolIs(BoolAttr(0), true));
        let counts = count_buckets(&rel, &spec, &what).unwrap();
        prop_assert_eq!(counts.counted(), values.len() as u64);
        prop_assert_eq!(counts.total_rows, values.len() as u64);
        for (b, (&u, v)) in counts.u.iter().zip(&counts.bool_v[0]).enumerate() {
            prop_assert!(*v <= u, "bucket {b}: v {} > u {}", v, u);
        }
        for (b, &(lo, hi)) in counts.ranges.iter().enumerate() {
            if counts.u[b] > 0 {
                let (blo, bhi) = spec.bucket_bounds(b);
                prop_assert!(lo >= blo.max(0.0) - 1e-12 && hi <= bhi + 1e-12 || blo < lo,
                    "bucket {b}: observed [{lo}, {hi}] outside ({blo}, {bhi}]");
                prop_assert!(lo <= hi);
            }
        }
    }

    /// Bucket assignment respects boundaries: bucket_of is monotone and
    /// consistent with bucket_bounds.
    #[test]
    fn bucket_of_consistent(cuts in prop::collection::vec(-50.0f64..50.0, 0..10),
                            xs in prop::collection::vec(-60.0f64..60.0, 1..100)) {
        let spec = BucketSpec::from_cuts(cuts);
        let mut prev: Option<(f64, usize)> = None;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &x in &sorted {
            let b = spec.bucket_of(x);
            let (lo, hi) = spec.bucket_bounds(b);
            prop_assert!(lo < x || (lo == f64::NEG_INFINITY && x == f64::NEG_INFINITY));
            prop_assert!(x <= hi);
            if let Some((px, pb)) = prev {
                prop_assert!(pb <= b, "monotonicity broken: {px}→{pb}, {x}→{b}");
            }
            prev = Some((x, b));
        }
    }

    /// Record encoding round-trips arbitrary rows.
    #[test]
    fn encoding_roundtrip(nums in prop::collection::vec(-1e12f64..1e12, 0..6),
                          bools in prop::collection::vec(any::<bool>(), 0..6)) {
        use optrules::relation::encoding::RecordLayout;
        let layout = RecordLayout::new(nums.len(), bools.len());
        let mut buf = Vec::new();
        layout.encode_row(&nums, &bools, &mut buf).unwrap();
        prop_assert_eq!(buf.len(), layout.record_size());
        let (mut n2, mut b2) = (Vec::new(), Vec::new());
        layout.decode_row(&buf, &mut n2, &mut b2).unwrap();
        prop_assert_eq!(nums, n2);
        prop_assert_eq!(bools, b2);
    }

    /// External sort equals std sort for any input and chunk size.
    #[test]
    fn external_sort_equals_std(values in prop::collection::vec(-1e6f64..1e6, 0..500),
                                chunk in 1usize..64) {
        use optrules::bucketing::external_sort::ExternalSorter;
        let mut sorter = ExternalSorter::new(std::env::temp_dir(), chunk);
        for &v in &values {
            sorter.push(v).unwrap();
        }
        let got = sorter.into_sorted().unwrap();
        let mut want = values;
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got, want);
    }
}
