//! Concurrency stress test: many threads firing mixed queries at one
//! [`SharedEngine`] must observe results byte-identical to a fresh
//! cache-free oracle — caching, sharding, and eviction are invisible.
//!
//! Run in CI both with the default parallel test runner and under
//! `RUST_TEST_THREADS=1 cargo test --release` (different race windows).

use optrules::prelude::*;

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 50;

/// One deterministic query shape. `run_on` rebuilds the same fluent
/// query against any engine, so the shared session and the cache-free
/// oracle execute identical plans.
#[derive(Debug, Clone, Copy)]
struct Desc {
    attr: &'static str,
    objective: Obj,
    given: Option<(&'static str, bool)>,
    buckets: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
enum Obj {
    /// Boolean objective `(name = yes)`.
    Is(&'static str),
    /// §5 average operator over the named target.
    Avg(&'static str),
}

impl Desc {
    fn run_on(&self, engine: &SharedEngine<&Relation>) -> RuleSet {
        let mut query = engine.query(self.attr);
        if let Some((name, value)) = self.given {
            let battr = engine.relation().schema().boolean(name).unwrap();
            query = query.given(Condition::BoolIs(battr, value));
        }
        if let Some(buckets) = self.buckets {
            query = query.buckets(buckets);
        }
        match self.objective {
            Obj::Is(target) => query.objective_is(target).run().unwrap(),
            Obj::Avg(target) => query.average_of(target).run().unwrap(),
        }
    }
}

/// The mixed workload: every simple (numeric, Boolean) pair, §4.3
/// generalized rules, §5 averages, and per-query bucket overrides.
fn descriptors() -> Vec<Desc> {
    let simple = |attr, target| Desc {
        attr,
        objective: Obj::Is(target),
        given: None,
        buckets: None,
    };
    let mut descs = Vec::new();
    for attr in ["Balance", "Age", "CheckingAccount", "SavingAccount"] {
        for target in ["CardLoan", "AutoWithdraw", "OnlineBanking"] {
            descs.push(simple(attr, target));
        }
    }
    descs.push(Desc {
        given: Some(("AutoWithdraw", true)),
        ..simple("Balance", "CardLoan")
    });
    descs.push(Desc {
        given: Some(("OnlineBanking", false)),
        ..simple("Age", "CardLoan")
    });
    descs.push(Desc {
        attr: "CheckingAccount",
        objective: Obj::Avg("SavingAccount"),
        given: None,
        buckets: None,
    });
    descs.push(Desc {
        attr: "Balance",
        objective: Obj::Avg("Age"),
        given: Some(("CardLoan", true)),
        buckets: None,
    });
    descs.push(Desc {
        buckets: Some(25),
        ..simple("Balance", "CardLoan")
    });
    descs.push(Desc {
        buckets: Some(75),
        ..simple("Age", "AutoWithdraw")
    });
    descs
}

fn config() -> EngineConfig {
    EngineConfig {
        buckets: 60,
        seed: 7,
        min_support: Ratio::percent(5),
        min_confidence: Ratio::percent(55),
        ..EngineConfig::default()
    }
}

/// A cache-free engine: zero cost budget means nothing is ever
/// admitted, so every query runs the full cold path.
fn oracle_engine(rel: &Relation) -> SharedEngine<&Relation> {
    SharedEngine::with_cache(
        rel,
        config(),
        CacheConfig {
            max_cost: 0,
            shards: 1,
        },
    )
}

/// The descriptor each (thread, iteration) slot runs: a deterministic
/// mix that makes threads collide on hot keys and also visit rare ones.
fn slot_descriptor(thread: usize, iteration: usize, count: usize) -> usize {
    (thread * QUERIES_PER_THREAD + iteration) * 13 % count
}

fn stress(shared: &SharedEngine<&Relation>, expected: &[RuleSet]) {
    let descs = descriptors();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let descs = &descs;
                scope.spawn(move || {
                    let mut mined = Vec::with_capacity(QUERIES_PER_THREAD);
                    for iteration in 0..QUERIES_PER_THREAD {
                        let idx = slot_descriptor(thread, iteration, descs.len());
                        mined.push((idx, descs[idx].run_on(shared)));
                    }
                    mined
                })
            })
            .collect();
        for (thread, handle) in handles.into_iter().enumerate() {
            for (idx, got) in handle.join().expect("stress worker panicked") {
                assert_eq!(
                    got, expected[idx],
                    "thread {thread} descriptor {idx} diverged from the cache-free oracle"
                );
            }
        }
    });
}

#[test]
fn shared_engine_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedEngine<Relation>>();
    assert_send_sync::<SharedEngine<FileRelation>>();
}

#[test]
fn eight_threads_match_cache_free_oracle() {
    let rel = BankGenerator::default().to_relation(20_000, 11);
    let descs = descriptors();
    // Oracle: a fresh cache-free run per descriptor.
    let expected: Vec<RuleSet> = descs
        .iter()
        .map(|d| d.run_on(&oracle_engine(&rel)))
        .collect();

    let shared = SharedEngine::with_config(&rel, config());
    stress(&shared, &expected);

    let stats = shared.stats();
    assert_eq!(
        stats.hits() + stats.misses(),
        stats.lookups,
        "every lookup must be exactly one hit or one miss: {stats:?}"
    );
    assert!(
        stats.hits() > 0,
        "400 queries over {} shapes must hit the cache: {stats:?}",
        descs.len()
    );
    assert!(stats.cached_cost <= shared.cache_config().max_cost);
}

#[test]
fn eight_threads_match_oracle_under_constant_eviction() {
    let rel = BankGenerator::default().to_relation(8_000, 11);
    let descs = descriptors();
    let expected: Vec<RuleSet> = descs
        .iter()
        .map(|d| d.run_on(&oracle_engine(&rel)))
        .collect();

    // A cache far too small for the workload: entries are evicted and
    // recomputed constantly, concurrently — results must not change.
    let tight = CacheConfig {
        max_cost: 800,
        shards: 4,
    };
    let shared = SharedEngine::with_cache(&rel, config(), tight);
    stress(&shared, &expected);

    let stats = shared.stats();
    assert_eq!(stats.hits() + stats.misses(), stats.lookups, "{stats:?}");
    assert!(stats.cached_cost <= tight.max_cost, "{stats:?}");
    assert!(
        stats.evictions > 0,
        "an 800-cell budget must evict under this workload: {stats:?}"
    );
}

#[test]
fn concurrent_cold_misses_coalesce_onto_one_scan() {
    // Singleflight: N threads cold-starting the *same* query must run
    // the bucketization and the counting scan exactly once — the other
    // threads park on the in-flight computation instead of duplicating
    // the O(N) work. This is deterministic, not probabilistic: a thread
    // either sees the cached value, leads the flight, or waits on it.
    let rel = BankGenerator::default().to_relation(20_000, 11);
    let shared = SharedEngine::with_config(&rel, config());
    let barrier = std::sync::Barrier::new(THREADS);
    let results: Vec<RuleSet> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = &shared;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    shared
                        .query("Balance")
                        .objective_is("CardLoan")
                        .run()
                        .unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect()
    });
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    let stats = shared.stats();
    assert_eq!(stats.bucketizations, 1, "{stats:?}");
    assert_eq!(stats.scans, 1, "{stats:?}");
    assert_eq!(stats.hits() + stats.misses(), stats.lookups, "{stats:?}");
    // Whoever missed while the flight was pending is accounted as a
    // coalesced wait; everyone else hit the cache outright. Either way
    // the work ran once, and the waiter tally can never exceed the
    // losing threads.
    assert!(
        stats.coalesced_waits <= (THREADS as u64 - 1) * 2,
        "{stats:?}"
    );
}

/// Live-relation stress: 8 reader threads run batches while one writer
/// appends generation after generation. Checks the issue's three
/// promises under real races:
///
/// * generations observed by each reader are **monotone** (a later
///   batch never sees an older snapshot);
/// * **no batch mixes two generations** — every result in one batch
///   reports the same `total_rows`, and that batch is byte-identical
///   to the same specs run sequentially against a fresh engine over
///   that generation's rows (snapshot isolation, not just row-count
///   agreement);
/// * the stats identity `hits + misses == lookups` holds under writes.
#[test]
fn readers_see_monotone_unmixed_generations_under_appends() {
    const BASE_ROWS: u64 = 6_000;
    const APPENDS: usize = 12;
    const ROWS_PER_APPEND: usize = 25;
    const ROUNDS: usize = 10;

    // Deterministic rows for append i, so oracles can be precomputed.
    fn rows_for(i: usize) -> Vec<RowFrame> {
        (0..ROWS_PER_APPEND)
            .map(|j| {
                let v = (i * ROWS_PER_APPEND + j) as f64;
                RowFrame {
                    numeric: vec![
                        (v * 37.0) % 20_000.0,
                        20.0 + (v % 60.0),
                        (v * 13.0) % 5_000.0,
                        (v * 101.0) % 40_000.0,
                    ],
                    boolean: vec![j % 2 == 0, j % 3 == 0, j % 5 == 0],
                }
            })
            .collect()
    }

    let specs = vec![
        QuerySpec::boolean("Balance", "CardLoan"),
        QuerySpec::boolean("Balance", "AutoWithdraw"),
        QuerySpec::average("CheckingAccount", "SavingAccount"),
    ];

    // Oracle per generation: the same specs on a fresh engine over the
    // flat concatenation of that generation's rows.
    let base = BankGenerator::default().to_relation(BASE_ROWS, 11);
    let mut flat = base.clone();
    let oracle: Vec<Vec<RuleSet>> = (0..=APPENDS)
        .map(|generation| {
            if generation > 0 {
                for row in rows_for(generation - 1) {
                    flat.push_row(&row.numeric, &row.boolean).unwrap();
                }
            }
            let fresh = SharedEngine::with_config(&flat, config());
            fresh
                .run_batch(&specs, 1)
                .into_iter()
                .map(|r| r.unwrap())
                .collect()
        })
        .collect();

    let live = SharedEngine::with_config(ChunkedRelation::new(base), config());
    std::thread::scope(|scope| {
        let live = &live;
        let specs = &specs;
        let oracle = &oracle;
        scope.spawn(move || {
            for i in 0..APPENDS {
                let outcome = live.append_rows(&rows_for(i)).unwrap();
                assert_eq!(outcome.generation, (i + 1) as u64);
                assert_eq!(outcome.appended, ROWS_PER_APPEND as u64);
                // Let readers interleave between generations.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        for _ in 0..THREADS {
            scope.spawn(move || {
                let mut last_generation = 0u64;
                for round in 0..ROUNDS {
                    let results: Vec<RuleSet> = live
                        .run_batch(specs, 1)
                        .into_iter()
                        .map(|r| r.unwrap())
                        .collect();
                    // No mixing: one total_rows across the whole batch.
                    let total_rows = results[0].total_rows;
                    assert!(
                        results.iter().all(|r| r.total_rows == total_rows),
                        "round {round}: a batch mixed generations: {:?}",
                        results.iter().map(|r| r.total_rows).collect::<Vec<_>>()
                    );
                    // The row count maps back to exactly one generation.
                    let delta = total_rows - BASE_ROWS;
                    assert_eq!(delta % ROWS_PER_APPEND as u64, 0, "round {round}");
                    let generation = delta / ROWS_PER_APPEND as u64;
                    assert!(generation <= APPENDS as u64, "round {round}");
                    // Monotone per reader.
                    assert!(
                        generation >= last_generation,
                        "round {round}: generation went backwards \
                         ({last_generation} -> {generation})"
                    );
                    last_generation = generation;
                    // Snapshot isolation: byte-identical to the fresh
                    // sequential run on that generation's rows.
                    assert_eq!(
                        results, oracle[generation as usize],
                        "round {round}: generation {generation} diverged from its oracle"
                    );
                }
            });
        }
    });

    let stats = live.stats();
    assert_eq!(
        stats.hits() + stats.misses(),
        stats.lookups,
        "every lookup must be exactly one hit or one miss under writes: {stats:?}"
    );
    assert_eq!(live.generation(), APPENDS as u64);
    assert_eq!(
        live.pin().rows(),
        BASE_ROWS + (APPENDS * ROWS_PER_APPEND) as u64
    );
}

#[test]
fn failing_leader_does_not_strand_concurrent_queries() {
    // A query whose computation fails (zero buckets) resolves its
    // flight as failed; coalesced waiters must retry (and fail the
    // same way), not hang.
    let rel = BankGenerator::default().to_relation(2_000, 11);
    let shared = SharedEngine::with_config(&rel, config());
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let shared = &shared;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let result = shared
                    .query("Balance")
                    .buckets(0)
                    .objective_is("CardLoan")
                    .run();
                assert!(result.is_err(), "zero buckets must fail");
            });
        }
    });
    let stats = shared.stats();
    assert_eq!(stats.hits() + stats.misses(), stats.lookups, "{stats:?}");
    // Errors are never cached, so a later healthy query still works.
    shared
        .query("Balance")
        .objective_is("CardLoan")
        .run()
        .unwrap();
}
