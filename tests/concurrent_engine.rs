//! Concurrency stress test: many threads firing mixed queries at one
//! [`SharedEngine`] must observe results byte-identical to a fresh
//! cache-free oracle — caching, sharding, and eviction are invisible.
//!
//! Run in CI both with the default parallel test runner and under
//! `RUST_TEST_THREADS=1 cargo test --release` (different race windows).

use optrules::prelude::*;

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 50;

/// One deterministic query shape. `run_on` rebuilds the same fluent
/// query against any engine, so the shared session and the cache-free
/// oracle execute identical plans.
#[derive(Debug, Clone, Copy)]
struct Desc {
    attr: &'static str,
    objective: Obj,
    given: Option<(&'static str, bool)>,
    buckets: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
enum Obj {
    /// Boolean objective `(name = yes)`.
    Is(&'static str),
    /// §5 average operator over the named target.
    Avg(&'static str),
}

impl Desc {
    fn run_on(&self, engine: &SharedEngine<&Relation>) -> RuleSet {
        let mut query = engine.query(self.attr);
        if let Some((name, value)) = self.given {
            let battr = engine.relation().schema().boolean(name).unwrap();
            query = query.given(Condition::BoolIs(battr, value));
        }
        if let Some(buckets) = self.buckets {
            query = query.buckets(buckets);
        }
        match self.objective {
            Obj::Is(target) => query.objective_is(target).run().unwrap(),
            Obj::Avg(target) => query.average_of(target).run().unwrap(),
        }
    }
}

/// The mixed workload: every simple (numeric, Boolean) pair, §4.3
/// generalized rules, §5 averages, and per-query bucket overrides.
fn descriptors() -> Vec<Desc> {
    let simple = |attr, target| Desc {
        attr,
        objective: Obj::Is(target),
        given: None,
        buckets: None,
    };
    let mut descs = Vec::new();
    for attr in ["Balance", "Age", "CheckingAccount", "SavingAccount"] {
        for target in ["CardLoan", "AutoWithdraw", "OnlineBanking"] {
            descs.push(simple(attr, target));
        }
    }
    descs.push(Desc {
        given: Some(("AutoWithdraw", true)),
        ..simple("Balance", "CardLoan")
    });
    descs.push(Desc {
        given: Some(("OnlineBanking", false)),
        ..simple("Age", "CardLoan")
    });
    descs.push(Desc {
        attr: "CheckingAccount",
        objective: Obj::Avg("SavingAccount"),
        given: None,
        buckets: None,
    });
    descs.push(Desc {
        attr: "Balance",
        objective: Obj::Avg("Age"),
        given: Some(("CardLoan", true)),
        buckets: None,
    });
    descs.push(Desc {
        buckets: Some(25),
        ..simple("Balance", "CardLoan")
    });
    descs.push(Desc {
        buckets: Some(75),
        ..simple("Age", "AutoWithdraw")
    });
    descs
}

fn config() -> EngineConfig {
    EngineConfig {
        buckets: 60,
        seed: 7,
        min_support: Ratio::percent(5),
        min_confidence: Ratio::percent(55),
        ..EngineConfig::default()
    }
}

/// A cache-free engine: zero cost budget means nothing is ever
/// admitted, so every query runs the full cold path.
fn oracle_engine(rel: &Relation) -> SharedEngine<&Relation> {
    SharedEngine::with_cache(
        rel,
        config(),
        CacheConfig {
            max_cost: 0,
            shards: 1,
        },
    )
}

/// The descriptor each (thread, iteration) slot runs: a deterministic
/// mix that makes threads collide on hot keys and also visit rare ones.
fn slot_descriptor(thread: usize, iteration: usize, count: usize) -> usize {
    (thread * QUERIES_PER_THREAD + iteration) * 13 % count
}

fn stress(shared: &SharedEngine<&Relation>, expected: &[RuleSet]) {
    let descs = descriptors();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let descs = &descs;
                scope.spawn(move || {
                    let mut mined = Vec::with_capacity(QUERIES_PER_THREAD);
                    for iteration in 0..QUERIES_PER_THREAD {
                        let idx = slot_descriptor(thread, iteration, descs.len());
                        mined.push((idx, descs[idx].run_on(shared)));
                    }
                    mined
                })
            })
            .collect();
        for (thread, handle) in handles.into_iter().enumerate() {
            for (idx, got) in handle.join().expect("stress worker panicked") {
                assert_eq!(
                    got, expected[idx],
                    "thread {thread} descriptor {idx} diverged from the cache-free oracle"
                );
            }
        }
    });
}

#[test]
fn shared_engine_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedEngine<Relation>>();
    assert_send_sync::<SharedEngine<FileRelation>>();
}

#[test]
fn eight_threads_match_cache_free_oracle() {
    let rel = BankGenerator::default().to_relation(20_000, 11);
    let descs = descriptors();
    // Oracle: a fresh cache-free run per descriptor.
    let expected: Vec<RuleSet> = descs
        .iter()
        .map(|d| d.run_on(&oracle_engine(&rel)))
        .collect();

    let shared = SharedEngine::with_config(&rel, config());
    stress(&shared, &expected);

    let stats = shared.stats();
    assert_eq!(
        stats.hits() + stats.misses(),
        stats.lookups,
        "every lookup must be exactly one hit or one miss: {stats:?}"
    );
    assert!(
        stats.hits() > 0,
        "400 queries over {} shapes must hit the cache: {stats:?}",
        descs.len()
    );
    assert!(stats.cached_cost <= shared.cache_config().max_cost);
}

#[test]
fn eight_threads_match_oracle_under_constant_eviction() {
    let rel = BankGenerator::default().to_relation(8_000, 11);
    let descs = descriptors();
    let expected: Vec<RuleSet> = descs
        .iter()
        .map(|d| d.run_on(&oracle_engine(&rel)))
        .collect();

    // A cache far too small for the workload: entries are evicted and
    // recomputed constantly, concurrently — results must not change.
    let tight = CacheConfig {
        max_cost: 800,
        shards: 4,
    };
    let shared = SharedEngine::with_cache(&rel, config(), tight);
    stress(&shared, &expected);

    let stats = shared.stats();
    assert_eq!(stats.hits() + stats.misses(), stats.lookups, "{stats:?}");
    assert!(stats.cached_cost <= tight.max_cost, "{stats:?}");
    assert!(
        stats.evictions > 0,
        "an 800-cell budget must evict under this workload: {stats:?}"
    );
}

#[test]
fn concurrent_cold_misses_coalesce_onto_one_scan() {
    // Singleflight: N threads cold-starting the *same* query must run
    // the bucketization and the counting scan exactly once — the other
    // threads park on the in-flight computation instead of duplicating
    // the O(N) work. This is deterministic, not probabilistic: a thread
    // either sees the cached value, leads the flight, or waits on it.
    let rel = BankGenerator::default().to_relation(20_000, 11);
    let shared = SharedEngine::with_config(&rel, config());
    let barrier = std::sync::Barrier::new(THREADS);
    let results: Vec<RuleSet> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = &shared;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    shared
                        .query("Balance")
                        .objective_is("CardLoan")
                        .run()
                        .unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect()
    });
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    let stats = shared.stats();
    assert_eq!(stats.bucketizations, 1, "{stats:?}");
    assert_eq!(stats.scans, 1, "{stats:?}");
    assert_eq!(stats.hits() + stats.misses(), stats.lookups, "{stats:?}");
    // Whoever missed while the flight was pending is accounted as a
    // coalesced wait; everyone else hit the cache outright. Either way
    // the work ran once, and the waiter tally can never exceed the
    // losing threads.
    assert!(
        stats.coalesced_waits <= (THREADS as u64 - 1) * 2,
        "{stats:?}"
    );
}

#[test]
fn failing_leader_does_not_strand_concurrent_queries() {
    // A query whose computation fails (zero buckets) resolves its
    // flight as failed; coalesced waiters must retry (and fail the
    // same way), not hang.
    let rel = BankGenerator::default().to_relation(2_000, 11);
    let shared = SharedEngine::with_config(&rel, config());
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let shared = &shared;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let result = shared
                    .query("Balance")
                    .buckets(0)
                    .objective_is("CardLoan")
                    .run();
                assert!(result.is_err(), "zero buckets must fail");
            });
        }
    });
    let stats = shared.stats();
    assert_eq!(stats.hits() + stats.misses(), stats.lookups, "{stats:?}");
    // Errors are never cached, so a later healthy query still works.
    shared
        .query("Balance")
        .objective_is("CardLoan")
        .run()
        .unwrap();
}
