//! Golden transcript for the sharded topology: the checked-in
//! `tests/data/coord_specs.ndjson` must produce exactly
//! `tests/data/coord_expected.ndjson` from a coordinator over two
//! `optrules serve` shards — and from a single-node server over the
//! unsliced relation — at several worker counts. The transcript mixes
//! mining specs (plain, generalized, per-spec bucket overrides, an
//! unknown attribute), appends (including malformed ones), a schema
//! probe, and a flush, so append routing, epoch generations, and error
//! envelopes are all pinned byte-for-byte.
//!
//! Average specs are deliberately absent: bank-generated floats make
//! per-shard partial sums depend on addition order, and the golden
//! pins exact bytes. Integer-data average identity is covered by
//! `tests/coord.rs`.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_optrules"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "optrules-coord-golden-{}-{name}.rel",
        std::process::id()
    ))
}

fn data(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

struct Server {
    child: Child,
    addr: String,
}

fn spawn_listening(args: &[&str]) -> Server {
    let mut child = bin()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("process spawns");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("read listening line");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
        .to_string();
    Server { child, addr }
}

const FLAGS: [&str; 8] = [
    "--buckets",
    "100",
    "--min-support",
    "10",
    "--min-confidence",
    "60",
    "--seed",
    "7",
];

fn spawn_serve(path: &str, workers: &str) -> Server {
    let mut args = vec!["serve", path, "--addr", "127.0.0.1:0", "--workers", workers];
    args.extend_from_slice(&FLAGS);
    spawn_listening(&args)
}

fn roundtrip(addr: &str, input: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| line.expect("read"))
        .collect()
}

fn shutdown(mut server: Server) {
    assert_eq!(
        roundtrip(&server.addr, "{\"cmd\":\"shutdown\"}\n"),
        ["{\"ok\":\"shutdown\"}"]
    );
    assert!(server.child.wait().expect("server exits").success());
}

#[test]
fn coordinator_and_single_node_match_the_golden_transcript() {
    let specs = data("coord_specs.ndjson");
    let golden = data("coord_expected.ndjson");
    let expected: Vec<&str> = golden.lines().collect();
    assert!(
        !expected.is_empty(),
        "golden expected file must not be empty"
    );

    let full = tmp("full");
    let full_s = full.to_str().unwrap();
    let gen = bin()
        .args(["gen", "bank", full_s, "--rows", "20000", "--seed", "3"])
        .output()
        .expect("gen runs");
    assert!(gen.status.success(), "{gen:?}");

    // An uneven split: shard 0 gets 8000 rows, shard 1 the other 12000.
    let mut shard_paths = Vec::new();
    for (i, (start, end)) in [("0", "8000"), ("8000", "20000")].iter().enumerate() {
        let path = tmp(&format!("shard{i}"));
        let out = bin()
            .args([
                "slice",
                full_s,
                path.to_str().unwrap(),
                "--start",
                start,
                "--end",
                end,
            ])
            .output()
            .expect("slice runs");
        assert!(out.status.success(), "{out:?}");
        shard_paths.push(path);
    }

    for workers in ["1", "4"] {
        // The golden must be exactly what a single node answers…
        let single = spawn_serve(full_s, workers);
        assert_eq!(
            roundtrip(&single.addr, &specs),
            expected,
            "single node diverged from the golden at --workers {workers}"
        );
        shutdown(single);

        // …and exactly what the coordinator answers over two shards.
        let shards: Vec<Server> = shard_paths
            .iter()
            .map(|p| spawn_serve(p.to_str().unwrap(), workers))
            .collect();
        let shard_list = shards
            .iter()
            .map(|s| s.addr.clone())
            .collect::<Vec<_>>()
            .join(",");
        let mut args = vec!["coord", "--shards", &shard_list];
        args.extend_from_slice(&FLAGS);
        let coord = spawn_listening(&args);
        assert_eq!(
            roundtrip(&coord.addr, &specs),
            expected,
            "coordinator diverged from the golden at --workers {workers}"
        );

        // Warm path: the first spec re-runs against the post-append
        // snapshot, whose answer the transcript already pinned.
        let first_spec = specs.lines().next().unwrap();
        let warm = roundtrip(&coord.addr, &format!("{first_spec}\n"));
        assert_eq!(
            warm,
            [expected[9]],
            "warm re-run must hit the pinned post-append answer"
        );
        let stats = roundtrip(&coord.addr, "{\"cmd\":\"stats\"}\n");
        assert!(stats[0].starts_with("{\"ok\":"), "{stats:?}");
        assert!(stats[0].contains("\"scan_cache_hits\":"), "{stats:?}");

        // Coordinator shutdown drains both shards.
        shutdown(coord);
        for mut shard in shards {
            assert!(shard.child.wait().expect("shard exits").success());
        }
    }

    std::fs::remove_file(&full).unwrap();
    for path in shard_paths {
        std::fs::remove_file(path).unwrap();
    }
}
