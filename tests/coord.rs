//! The scatter-gather coordinator (`optrules::coord`): byte-identity
//! against a single-node engine over the concatenated relation, the
//! generation-vector consistency model for live appends, warm-path
//! shard-RPC dedup, shard-internal frame rejection, and shutdown
//! propagation to the backends.
//!
//! Specs that touch f64 *sums* (the average operator) are exercised on
//! integer-valued data: float addition is not associative, so only
//! exactly-representable sums are guaranteed byte-identical across the
//! shard partitioning (the documented caveat). Boolean specs are exact
//! on any data — their counts are integers.

use optrules::core::json::{self, Json, Num};
use optrules::core::server::{serve, serve_service, ServerConfig, ServerHandle};
use optrules::prelude::*;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

fn config() -> EngineConfig {
    EngineConfig {
        buckets: 60,
        seed: 7,
        min_support: Ratio::percent(10),
        min_confidence: Ratio::percent(60),
        ..EngineConfig::default()
    }
}

/// Copies rows `range` of `rel` into a fresh in-memory relation.
fn slice_rel(rel: &Relation, range: std::ops::Range<u64>) -> Relation {
    let mut part = Relation::new(TupleScan::schema(rel).clone());
    rel.for_each_row_in(range, &mut |_, nums, bools| {
        part.push_row(nums, bools).expect("same schema");
    })
    .expect("in-memory scan cannot fail");
    part
}

/// Starts one shard server per split of `rel` at the given row cuts
/// (plus both ends) and returns the handles with their addresses.
fn shard_servers(rel: &Relation, cuts: &[u64]) -> (Vec<ServerHandle>, Vec<String>) {
    let mut bounds = vec![0u64];
    bounds.extend_from_slice(cuts);
    bounds.push(rel.len());
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for pair in bounds.windows(2) {
        let part = slice_rel(rel, pair[0]..pair[1]);
        let engine = SharedEngine::with_config(part, config());
        let handle = serve(Arc::new(engine), "127.0.0.1:0", ServerConfig::default())
            .expect("bind shard server");
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    (handles, addrs)
}

fn coordinator(addrs: &[String]) -> Coordinator {
    Coordinator::connect(
        addrs,
        config(),
        CacheConfig::default(),
        CoordConfig::default(),
    )
    .expect("connect to shards")
}

/// One-shot client against an arbitrary address: write, half-close,
/// read to EOF.
fn rt(addr: SocketAddr, input: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| line.expect("read"))
        .collect()
}

/// Pulls a `u64` field out of a `{"ok": {...}}` response line.
fn ok_field(line: &str, field: &str) -> u64 {
    let Ok(Json::Obj(envelope)) = Json::parse(line) else {
        panic!("unparseable response {line:?}");
    };
    let Some((_, Json::Obj(body))) = envelope.iter().find(|(key, _)| key == "ok") else {
        panic!("response is not ok: {line:?}");
    };
    match body.iter().find(|(key, _)| key == field) {
        Some((_, Json::Num(Num::UInt(value)))) => *value,
        other => panic!("field {field:?} missing or non-integer: {other:?}"),
    }
}

fn encode_lines(specs: &[QuerySpec]) -> String {
    let mut out = String::new();
    for spec in specs {
        out.push_str(&json::encode_spec(spec));
        out.push('\n');
    }
    out
}

/// A mixed bank-data batch: simple boolean specs, a generalized spec
/// with a presumptive conjunct, and a failing spec. No average specs —
/// bank values are arbitrary floats, so their sums are not partition-
/// stable; integer-data tests below cover the average operator.
fn bank_batch() -> Vec<QuerySpec> {
    let mut generalized = QuerySpec::boolean("Balance", "CardLoan");
    generalized.given = vec![CondSpec::BoolIs {
        attr: "OnlineBanking".into(),
        value: true,
    }];
    vec![
        QuerySpec::boolean("Balance", "CardLoan"),
        QuerySpec::boolean("Balance", "AutoWithdraw"),
        QuerySpec::boolean("CheckingAccount", "OnlineBanking"),
        generalized,
        QuerySpec::boolean("NoSuchAttr", "CardLoan"),
    ]
}

/// A deterministic integer-valued relation: sums over any partition
/// are exact, so even average rules are byte-identical.
fn integer_relation(rows: u64) -> Relation {
    let schema = Schema::builder()
        .numeric("A")
        .numeric("T")
        .boolean("C")
        .build();
    let mut rel = Relation::with_capacity(schema, rows as usize);
    for i in 0..rows {
        let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let a = (h % 1_000) as f64;
        let t = ((h >> 10) % 500) as f64;
        let c = (h >> 20) % 10 < 4;
        rel.push_row(&[a, t], &[c]).expect("schema matches");
    }
    rel
}

/// The acceptance core: over two shards, the coordinator's TCP
/// responses are byte-identical to a single-node server over the
/// concatenated rows — cold and warm, at 1 and 4 workers/batch
/// threads — and the warm repeat costs zero additional shard RPCs.
#[test]
fn coordinator_matches_single_node_cold_and_warm() {
    let full = BankGenerator::default().to_relation(8_000, 23);
    let requests = encode_lines(&bank_batch());

    for (workers, batch_threads) in [(1, 1), (4, 4)] {
        let server_config = ServerConfig {
            workers,
            batch_threads,
            ..ServerConfig::default()
        };
        let single = serve(
            Arc::new(SharedEngine::with_config(
                slice_rel(&full, 0..full.len()),
                config(),
            )),
            "127.0.0.1:0",
            server_config,
        )
        .expect("bind single-node server");
        let reference = rt(single.addr(), &requests);
        assert!(reference[0].starts_with("{\"ok\":"), "{reference:?}");
        assert!(reference[4].starts_with("{\"error\":"), "{reference:?}");

        let (shards, addrs) = shard_servers(&full, &[3_000]);
        let coord = serve_service(Arc::new(coordinator(&addrs)), "127.0.0.1:0", server_config)
            .expect("bind coordinator");

        let cold = rt(coord.addr(), &requests);
        assert_eq!(cold, reference, "workers={workers} cold != single-node");

        let stats_cold = rt(coord.addr(), "{\"cmd\":\"stats\"}\n");
        let rpcs_cold = ok_field(&stats_cold[0], "shard_rpcs");
        assert!(rpcs_cold > 0);
        assert!(ok_field(&stats_cold[0], "merged_nodes") > 0);
        assert!(stats_cold[0].contains("\"shards\":["), "{stats_cold:?}");

        let warm = rt(coord.addr(), &requests);
        assert_eq!(warm, reference, "workers={workers} warm != single-node");
        let stats_warm = rt(coord.addr(), "{\"cmd\":\"stats\"}\n");
        assert_eq!(
            ok_field(&stats_warm[0], "shard_rpcs"),
            rpcs_cold,
            "a fully warm batch must not touch the shards"
        );
        assert!(
            ok_field(&stats_warm[0], "scan_cache_hits")
                > ok_field(&stats_cold[0], "scan_cache_hits"),
            "warm batch must hit the coordinator cache"
        );

        // Shutting the coordinator down drains the shards: their
        // handles join without being shut down directly.
        coord.shutdown();
        coord.join();
        for shard in shards {
            shard.join();
        }
        single.shutdown();
        single.join();
    }
}

/// The average operator over three shards (one deliberately empty) on
/// integer-valued data: sums are exact, so responses — including the
/// §5 average rules — are byte-identical to the single-node engine.
#[test]
fn average_specs_match_on_integer_data_with_an_empty_shard() {
    let full = integer_relation(5_000);
    let mut avg = QuerySpec::average("A", "T");
    avg.min_average = Some(Real(240.0));
    let specs = vec![
        avg,
        QuerySpec::boolean("A", "C"),
        QuerySpec::average("T", "A"),
    ];
    let requests = encode_lines(&specs);

    let single = serve(
        Arc::new(SharedEngine::with_config(
            slice_rel(&full, 0..full.len()),
            config(),
        )),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind single-node server");
    let reference = rt(single.addr(), &requests);
    assert!(
        reference.iter().all(|l| l.starts_with("{\"ok\":")),
        "{reference:?}"
    );

    // Middle shard holds rows 2_000..2_000: empty. The coordinator must
    // skip it in the data pass instead of tripping EmptyRelation.
    let (shards, addrs) = shard_servers(&full, &[2_000, 2_000]);
    let coord = coordinator(&addrs);
    assert_eq!(coord.shard_count(), 3);
    let got: Vec<String> = coord
        .run_segment(&specs, 1)
        .into_iter()
        .map(|v| v.encode())
        .collect();
    assert_eq!(got, reference);

    single.shutdown();
    single.join();
    for shard in shards {
        shard.shutdown();
        shard.join();
    }
}

/// Live appends: the coordinator routes rows to the last shard, speaks
/// epoch generations on the wire, and post-append queries match the
/// single-node engine over the same (appended) rows — byte for byte,
/// including the malformed-rows error path.
#[test]
fn appends_route_to_last_shard_and_stay_byte_identical() {
    let full = integer_relation(3_000);
    let spec_line = json::encode_spec(&QuerySpec::average("A", "T"));
    let input = format!(
        concat!(
            "{spec}\n",
            "{{\"cmd\":\"append\",\"rows\":[[250,100,true],[750,200,false]]}}\n",
            "{spec}\n",
            "{{\"cmd\":\"append\",\"rows\":[[1,true]]}}\n",
            "{{\"cmd\":\"schema\"}}\n",
            "{{\"cmd\":\"flush\"}}\n",
        ),
        spec = spec_line
    );

    let single = serve(
        Arc::new(SharedEngine::with_config(
            slice_rel(&full, 0..full.len()),
            config(),
        )),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind single-node server");
    let reference = rt(single.addr(), &input);

    let (shards, addrs) = shard_servers(&full, &[1_000]);
    let coord = serve_service(
        Arc::new(coordinator(&addrs)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind coordinator");
    let got = rt(coord.addr(), &input);
    assert_eq!(got, reference);
    assert_eq!(
        got[1], "{\"ok\":{\"appended\":2,\"generation\":1,\"rows\":3002}}",
        "append ack speaks epoch generations"
    );
    assert!(got[3].contains("row 0 has 2 cells"), "{got:?}");

    // The appended rows landed on the *last* shard only.
    let shard_stats = rt(shards[1].addr(), "{\"cmd\":\"stats\"}\n");
    assert_eq!(ok_field(&shard_stats[0], "rows"), 2_002);
    assert_eq!(ok_field(&shard_stats[0], "generation"), 1);
    let first_stats = rt(shards[0].addr(), "{\"cmd\":\"stats\"}\n");
    assert_eq!(ok_field(&first_stats[0], "rows"), 1_000);
    assert_eq!(ok_field(&first_stats[0], "generation"), 0);

    coord.shutdown();
    coord.join();
    for shard in shards {
        shard.join();
    }
    single.shutdown();
    single.join();
}

/// The shard-internal frames are not part of the coordinator's public
/// surface: a client sending them gets an error, not a fan-out.
#[test]
fn shard_internal_frames_are_rejected_at_the_coordinator() {
    let full = integer_relation(200);
    let (shards, addrs) = shard_servers(&full, &[100]);
    let coord = serve_service(
        Arc::new(coordinator(&addrs)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind coordinator");

    let lines = rt(
        coord.addr(),
        concat!(
            "{\"cmd\":\"values\",\"attr\":\"A\",\"indices\":[0]}\n",
            "{\"cmd\":\"count\",\"attr\":\"A\",\"cuts\":[],\"threads\":1,\"all_booleans\":true}\n",
        ),
    );
    assert_eq!(
        lines[0],
        "{\"error\":\"bad request: \\\"values\\\" is a shard-internal frame\"}"
    );
    assert_eq!(
        lines[1],
        "{\"error\":\"bad request: \\\"count\\\" is a shard-internal frame\"}"
    );

    coord.shutdown();
    coord.join();
    for shard in shards {
        shard.join();
    }
}

/// Connecting to shards that disagree on the schema must fail up
/// front, not at query time.
#[test]
fn mismatched_shard_schemas_are_rejected_at_connect() {
    let a = serve(
        Arc::new(SharedEngine::with_config(integer_relation(50), config())),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let b = serve(
        Arc::new(SharedEngine::with_config(
            BankGenerator::default().to_relation(50, 1),
            config(),
        )),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let err = Coordinator::connect(
        &[a.addr().to_string(), b.addr().to_string()],
        config(),
        CacheConfig::default(),
        CoordConfig::default(),
    )
    .err()
    .expect("schema mismatch must fail");
    assert!(
        err.to_string().contains("different schema"),
        "unexpected error: {err}"
    );
    for handle in [a, b] {
        handle.shutdown();
        handle.join();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Property: for any integer-valued relation, any split point, and
    /// any spec parameters, the coordinator over two shards answers
    /// exactly like the flat-relation oracle — at several fan-out
    /// widths.
    #[test]
    fn coordinator_equals_flat_oracle(
        rows in 60u64..400,
        cut_ppm in 0u32..=1_000,
        buckets in 5usize..40,
        min_support in 5u64..30,
        min_confidence in 40u64..80,
        min_average in 0u32..400,
    ) {
        let cut = rows * u64::from(cut_ppm) / 1_000;
        let full = integer_relation(rows);
        let mut avg = QuerySpec::average("A", "T");
        avg.min_average = Some(Real(f64::from(min_average)));
        avg.buckets = Some(buckets);
        let mut boolean = QuerySpec::boolean("A", "C");
        boolean.buckets = Some(buckets);
        boolean.min_support = Some(Ratio::percent(min_support));
        boolean.min_confidence = Some(Ratio::percent(min_confidence));
        let mut given = QuerySpec::boolean("T", "C");
        given.given = vec![CondSpec::NumInRange {
            attr: "A".into(),
            lo: Real(100.0),
            hi: Real(800.0),
        }];
        let specs = vec![avg, boolean, given];

        let oracle = SharedEngine::with_config(slice_rel(&full, 0..full.len()), config());
        let expected: Vec<String> = specs
            .iter()
            .map(|spec| match oracle.run_spec(spec) {
                Ok(rules) => json::ok_envelope(json::rule_set_to_value(&rules)).encode(),
                Err(e) => json::error_envelope(e.to_string()).encode(),
            })
            .collect();

        let (shards, addrs) = shard_servers(&full, &[cut]);
        let coord = coordinator(&addrs);
        for threads in [1usize, 4] {
            let got: Vec<String> = coord
                .run_segment(&specs, threads)
                .into_iter()
                .map(|v| v.encode())
                .collect();
            prop_assert_eq!(&got, &expected, "threads={}", threads);
        }
        for shard in shards {
            shard.shutdown();
            shard.join();
        }
    }
}
