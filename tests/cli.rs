//! Integration tests for the `optrules` CLI binary: generate → info →
//! mine → avg round trips through real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_optrules"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("optrules-cli-{}-{name}.rel", std::process::id()))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn gen_info_mine_roundtrip() {
    let path = tmp("bank");
    let path_s = path.to_str().unwrap();

    let out = run_ok(&["gen", "bank", path_s, "--rows", "20000", "--seed", "3"]);
    assert!(out.contains("wrote 20000 rows"), "{out}");

    let out = run_ok(&["info", path_s]);
    assert!(out.contains("rows     : 20000"), "{out}");
    assert!(out.contains("Balance"), "{out}");
    assert!(out.contains("CardLoan"), "{out}");

    let out = run_ok(&[
        "mine",
        path_s,
        "--attr",
        "Balance",
        "--target",
        "CardLoan",
        "--buckets",
        "100",
        "--min-support",
        "10",
        "--min-confidence",
        "60",
    ]);
    assert!(out.contains("optimized-support"), "{out}");
    assert!(out.contains("optimized-confidence"), "{out}");
    assert!(out.contains("Balance in ["), "{out}");

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mine_with_given_conjunct() {
    let path = tmp("retail");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "retail", path_s, "--rows", "30000"]);
    let out = run_ok(&[
        "mine",
        path_s,
        "--attr",
        "Amount",
        "--target",
        "Potato",
        "--given",
        "Pizza=yes",
        "--buckets",
        "100",
        "--min-support",
        "2",
        "--min-confidence",
        "65",
    ]);
    assert!(out.contains("| (Pizza = yes)"), "{out}");
    assert!(out.contains("Amount in ["), "{out}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn avg_command() {
    let path = tmp("avg");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "20000"]);
    let out = run_ok(&[
        "avg",
        path_s,
        "--attr",
        "CheckingAccount",
        "--target",
        "SavingAccount",
        "--min-support",
        "10",
        "--min-avg",
        "14000",
        "--buckets",
        "200",
    ]);
    assert!(out.contains("max-average range"), "{out}");
    assert!(out.contains("max-support range"), "{out}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn errors_exit_nonzero_with_usage() {
    let out = bin().args(["mine", "/nonexistent.rel"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");

    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing command"));

    let out = bin().args(["gen", "nope", "/tmp/x.rel"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown generator"));
}

#[test]
fn trailing_flag_without_value_is_an_error_naming_the_flag() {
    let out = bin()
        .args(["info", "/tmp/x.rel", "--rows"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--rows expects a value"), "{err}");
    assert!(err.contains("usage:"), "{err}");

    // A flag directly followed by another flag must not swallow it.
    let out = bin()
        .args(["mine", "/tmp/x.rel", "--attr", "--target", "CardLoan"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--attr expects a value, got \"--target\""),
        "{err}"
    );
}

#[test]
fn unknown_flag_is_an_error_naming_the_flag() {
    let path = tmp("unknown-flag");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "1000"]);

    let out = bin()
        .args([
            "mine", path_s, "--attr", "Balance", "--target", "CardLoan", "--bucket", "10",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --bucket"), "{err}");
    // The error lists what *is* accepted.
    assert!(err.contains("--buckets"), "{err}");

    let out = bin()
        .args(["gen", "bank", path_s, "--min-support", "10"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --min-support"), "{err}");

    // A subcommand with no flags at all says so instead of listing "".
    let out = bin()
        .args(["info", path_s, "--rows", "5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown flag --rows (this subcommand takes no flags)"),
        "{err}"
    );

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mine_all_threaded_output_is_identical_to_sequential() {
    let path = tmp("mt-determinism");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "20000", "--seed", "5"]);
    let args = |threads: &'static str| {
        vec![
            "mine-all",
            path_s,
            "--buckets",
            "100",
            "--min-support",
            "5",
            "--min-confidence",
            "55",
            "--threads",
            threads,
        ]
    };
    // Results are reassembled in numeric-major pair order and sorted
    // stably before printing, so the fan-out width must not change a
    // single byte of output.
    let sequential = run_ok(&args("1"));
    assert!(
        sequential.contains("12 attribute pairs mined"),
        "{sequential}"
    );
    for threads in ["2", "8"] {
        let fanned = run_ok(&args(threads));
        assert_eq!(fanned, sequential, "--threads {threads} changed the output");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mine_all_pairs_cli() {
    let path = tmp("allpairs");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "planted", path_s, "--rows", "10000"]);
    let out = run_ok(&[
        "mine-all",
        path_s,
        "--buckets",
        "50",
        "--min-support",
        "10",
        "--min-confidence",
        "60",
    ]);
    assert!(out.contains("1 attribute pairs mined"), "{out}");
    std::fs::remove_file(&path).unwrap();
}

/// Runs the binary with `input` piped to stdin, asserting success.
fn run_ok_stdin(args: &[&str], input: &str) -> String {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// The checked-in golden pair: piping `tests/data/batch_specs.ndjson`
/// through `optrules batch` over the standard bank relation
/// (20k rows, gen seed 3, engine flags below) must reproduce
/// `tests/data/batch_expected.ndjson` byte for byte, at every
/// `--threads` value. CI runs the same diff as a shell step.
#[test]
fn batch_golden_output_is_stable() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let specs = std::fs::read_to_string(dir.join("batch_specs.ndjson")).unwrap();
    let expected = std::fs::read_to_string(dir.join("batch_expected.ndjson")).unwrap();
    let path = tmp("batch-golden");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "20000", "--seed", "3"]);
    for threads in ["1", "4"] {
        let out = run_ok_stdin(
            &[
                "batch",
                path_s,
                "--buckets",
                "100",
                "--min-support",
                "10",
                "--min-confidence",
                "60",
                "--seed",
                "7",
                "--threads",
                threads,
            ],
            &specs,
        );
        assert_eq!(out, expected, "--threads {threads} diverged from golden");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn batch_responses_parse_and_line_up_with_requests() {
    let path = tmp("batch-proto");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "5000", "--seed", "3"]);
    let requests = concat!(
        r#"{"attr":"Balance","objective":{"bool":"CardLoan"},"buckets":50}"#,
        "\n\n", // blank lines are skipped, not answered
        r#"{"attr":"Balance","objective":{"bool":"NoSuchBool"},"buckets":50}"#,
        "\ngarbage\n",
    );
    let out = run_ok_stdin(&["batch", path_s], requests);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "{out}");
    // Every response line is valid JSON by our own decoder's parser,
    // with the ok/error envelope in request order.
    use optrules::core::json::Json;
    for line in &lines {
        Json::parse(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"));
    }
    assert!(lines[0].starts_with(r#"{"ok":{"attr":"Balance""#), "{out}");
    assert!(lines[1].starts_with(r#"{"error":"#), "{out}");
    assert!(lines[2].starts_with(r#"{"error":"bad request"#), "{out}");
    std::fs::remove_file(&path).unwrap();
}

/// The live-relation golden pair: piping `tests/data/live_specs.ndjson`
/// (specs interleaved with append/stats control frames, plus every
/// malformed-row shape) through `optrules batch` over the standard
/// bank relation must reproduce `tests/data/live_expected.ndjson` byte
/// for byte, at every `--threads` value. Pins the append ack bytes,
/// the generation/row-count stats fields, and the error envelopes for
/// wrong arity, non-numeric cells, and oversized frames. CI runs the
/// same diff as a shell step (and once more over TCP through
/// `optrules serve` — see `tests/serve.rs`).
#[test]
fn live_golden_output_is_stable() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let specs = std::fs::read_to_string(dir.join("live_specs.ndjson")).unwrap();
    let expected = std::fs::read_to_string(dir.join("live_expected.ndjson")).unwrap();
    let path = tmp("live-golden");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "20000", "--seed", "3"]);
    for threads in ["1", "4"] {
        let out = run_ok_stdin(
            &[
                "batch",
                path_s,
                "--buckets",
                "100",
                "--min-support",
                "10",
                "--min-confidence",
                "60",
                "--seed",
                "7",
                "--cache-shards",
                "1",
                "--threads",
                threads,
            ],
            &specs,
        );
        assert_eq!(
            out, expected,
            "--threads {threads} diverged from live golden"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

/// `--cache-mb` / `--cache-shards` validate strictly and never change
/// output (caching is semantically invisible, only faster).
#[test]
fn cache_flags_validate_and_leave_output_unchanged() {
    let path = tmp("cache-flags");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "5000", "--seed", "3"]);
    let request = "{\"attr\":\"Balance\",\"objective\":{\"bool\":\"CardLoan\"},\"buckets\":50}\n";

    let default_out = run_ok_stdin(&["batch", path_s], request);
    // Sized way down (1 MiB, 2 shards) and with caching disabled
    // entirely: byte-identical responses.
    for sizing in [
        &["--cache-mb", "1", "--cache-shards", "2"][..],
        &["--cache-mb", "0"][..],
    ] {
        let mut args = vec!["batch", path_s];
        args.extend_from_slice(sizing);
        assert_eq!(run_ok_stdin(&args, request), default_out, "{sizing:?}");
    }

    // Invalid values are errors naming the flag, for batch and serve.
    for (args, needle) in [
        (
            vec!["batch", path_s, "--cache-mb", "lots"],
            "--cache-mb expects a number",
        ),
        (
            vec!["batch", path_s, "--cache-shards", "0"],
            "--cache-shards must be at least 1",
        ),
        (
            vec!["serve", path_s, "--cache-shards", "zero"],
            "--cache-shards expects a number",
        ),
        (
            vec!["serve", path_s, "--workers", "0"],
            "--workers must be at least 1",
        ),
        (
            vec!["serve", path_s, "--max-inflight", "0"],
            "--max-inflight must be at least 1",
        ),
        (
            vec!["serve", path_s, "--write-timeout-secs", "0"],
            "--write-timeout-secs must be at least 1",
        ),
        (
            vec!["serve", path_s, "--write-timeout-secs", "soon"],
            "--write-timeout-secs expects a number",
        ),
        (
            vec!["batch", path_s, "--write-timeout-secs", "30"],
            "unknown flag --write-timeout-secs",
        ),
        (
            vec!["serve", path_s, "--addr", "not-an-address"],
            "binding not-an-address",
        ),
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn format_json_emits_decodable_results_and_text_stays_default() {
    use optrules::core::json;
    let path = tmp("format");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "5000", "--seed", "3"]);
    let mine_args = |extra: &[&'static str]| -> Vec<&str> {
        let mut v = vec![
            "mine",
            path_s,
            "--attr",
            "Balance",
            "--target",
            "CardLoan",
            "--buckets",
            "50",
        ];
        v.extend_from_slice(extra);
        v
    };
    // Default output is byte-identical to an explicit --format text.
    assert_eq!(
        run_ok(&mine_args(&[])),
        run_ok(&mine_args(&["--format", "text"]))
    );
    let out = run_ok(&mine_args(&["--format", "json"]));
    let rules = json::decode_rule_set(out.trim()).expect("mine --format json decodes");
    assert_eq!(rules.attr_name, "Balance");

    let out = run_ok(&[
        "avg",
        path_s,
        "--attr",
        "CheckingAccount",
        "--target",
        "SavingAccount",
        "--buckets",
        "50",
        "--format",
        "json",
    ]);
    let rules = json::decode_rule_set(out.trim()).expect("avg --format json decodes");
    assert!(rules.objective_desc.contains("avg(SavingAccount)"));

    // mine-all: one decodable line per pair (4 numeric × 3 boolean).
    let out = run_ok(&["mine-all", path_s, "--buckets", "50", "--format", "json"]);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 12, "{out}");
    for line in lines {
        json::decode_rule_set(line).expect("mine-all --format json decodes");
    }

    let out = bin()
        .args(mine_args(&["--format", "yaml"]))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--format expects text or json"),
        "bad format must name the flag"
    );
    std::fs::remove_file(&path).unwrap();
}

/// `--data-dir` turns on durability; its companion flags validate
/// strictly and are rejected without it.
#[test]
fn durability_flags_validate() {
    let path = tmp("durability-flags");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "1000", "--seed", "3"]);
    let dir = std::env::temp_dir().join(format!("optrules-cli-dflags-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    for (args, needle) in [
        (
            vec!["batch", path_s, "--wal-sync", "always"],
            "--wal-sync requires --data-dir",
        ),
        (
            vec!["serve", path_s, "--spill-rows", "100"],
            "--spill-rows requires --data-dir",
        ),
        (
            vec![
                "batch",
                path_s,
                "--data-dir",
                dir_s.as_str(),
                "--wal-sync",
                "sometimes",
            ],
            "--wal-sync expects always, batch, or off",
        ),
        (
            vec![
                "batch",
                path_s,
                "--data-dir",
                dir_s.as_str(),
                "--spill-rows",
                "0",
            ],
            "--spill-rows must be at least 1",
        ),
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::remove_file(&path).unwrap();
}

/// Appends acknowledged by one `batch --data-dir` run are visible to
/// the next run over the same directory: the WAL/checkpoint round
/// trip preserves rows and the generation counter, `stats` reports
/// the durability counters, and `flush` acks with the generation.
#[test]
fn batch_data_dir_persists_appends_across_runs() {
    let path = tmp("batch-durable");
    let path_s = path.to_str().unwrap();
    run_ok(&["gen", "bank", path_s, "--rows", "1000", "--seed", "3"]);
    let dir = std::env::temp_dir().join(format!("optrules-cli-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    let requests = concat!(
        r#"{"cmd":"append","rows":[[3100.5,41,1200,15000,true,false,true],[9000,22,800,500,false,false,true]]}"#,
        "\n",
        r#"{"cmd":"flush"}"#,
        "\n",
        r#"{"cmd":"stats"}"#,
        "\n",
    );
    let out = run_ok_stdin(&["batch", path_s, "--data-dir", dir_s], requests);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "{out}");
    assert_eq!(
        lines[0],
        r#"{"ok":{"appended":2,"generation":1,"rows":1002}}"#
    );
    assert_eq!(lines[1], r#"{"ok":{"flushed":true,"generation":1}}"#);
    assert!(lines[2].contains(r#""rows":1002"#), "{out}");
    assert!(lines[2].contains(r#""durability":{"wal_bytes":8"#), "{out}");
    assert!(
        lines[2].contains(r#""last_checkpoint_generation":1"#),
        "{out}"
    );

    // Second run over the same directory: the appended rows and the
    // generation counter survived the process exit.
    let out = run_ok_stdin(
        &["batch", path_s, "--data-dir", dir_s],
        "{\"cmd\":\"stats\"}\n",
    );
    assert!(out.contains(r#""generation":1"#), "{out}");
    assert!(out.contains(r#""rows":1002"#), "{out}");

    // Without --data-dir the same relation file still reports its
    // original row count — durability never mutates the base file.
    let out = run_ok_stdin(&["batch", path_s], "{\"cmd\":\"stats\"}\n");
    assert!(out.contains(r#""rows":1000"#), "{out}");
    assert!(!out.contains("durability"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
    std::fs::remove_file(&path).unwrap();
}
