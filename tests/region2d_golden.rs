//! Golden transcript for two-attribute rectangle mining on the wire:
//! the checked-in `tests/data/region2d_specs.ndjson` must produce
//! exactly `tests/data/region2d_expected.ndjson` from a single
//! `optrules serve` node — and from a coordinator over two sliced
//! shards — at several worker counts. The transcript mixes rectangle
//! specs (plain, task/threshold/bucket overrides, generalized,
//! conjunction objectives), a 1-D spec, two failing specs (unknown
//! second attribute, average objective with `attr2`), a schema probe,
//! an append, and a post-append rectangle re-run, so the 2-D wire
//! encoding, grid scatter-gather, and error envelopes are all pinned
//! byte-for-byte.
//!
//! Unlike the 1-D coordinator golden, rectangle specs are safe on
//! arbitrary-float bank data: grid cells are integer counts and the
//! observed value ranges are min/max folds, so the merged grid — and
//! every byte derived from it — is independent of the shard split.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_optrules"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "optrules-region2d-golden-{}-{name}.rel",
        std::process::id()
    ))
}

fn data(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

struct Server {
    child: Child,
    addr: String,
}

fn spawn_listening(args: &[&str]) -> Server {
    let mut child = bin()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("process spawns");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("read listening line");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
        .to_string();
    Server { child, addr }
}

const FLAGS: [&str; 8] = [
    "--buckets",
    "100",
    "--min-support",
    "10",
    "--min-confidence",
    "60",
    "--seed",
    "7",
];

fn spawn_serve(path: &str, workers: &str) -> Server {
    let mut args = vec!["serve", path, "--addr", "127.0.0.1:0", "--workers", workers];
    args.extend_from_slice(&FLAGS);
    spawn_listening(&args)
}

fn roundtrip(addr: &str, input: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| line.expect("read"))
        .collect()
}

fn shutdown(mut server: Server) {
    assert_eq!(
        roundtrip(&server.addr, "{\"cmd\":\"shutdown\"}\n"),
        ["{\"ok\":\"shutdown\"}"]
    );
    assert!(server.child.wait().expect("server exits").success());
}

#[test]
fn rectangle_transcript_matches_on_single_node_and_coordinator() {
    let specs = data("region2d_specs.ndjson");
    let golden = data("region2d_expected.ndjson");
    let expected: Vec<&str> = golden.lines().collect();
    assert_eq!(
        expected.len(),
        specs.lines().count(),
        "one response line per request line"
    );
    assert!(
        expected[0].contains("\"kind\":\"rect_support\""),
        "the transcript must pin rectangle rules: {:?}",
        expected[0]
    );

    let full = tmp("full");
    let full_s = full.to_str().unwrap();
    let gen = bin()
        .args(["gen", "bank", full_s, "--rows", "20000", "--seed", "3"])
        .output()
        .expect("gen runs");
    assert!(gen.status.success(), "{gen:?}");

    // An uneven split: shard 0 gets 8000 rows, shard 1 the other 12000.
    let mut shard_paths = Vec::new();
    for (i, (start, end)) in [("0", "8000"), ("8000", "20000")].iter().enumerate() {
        let path = tmp(&format!("shard{i}"));
        let out = bin()
            .args([
                "slice",
                full_s,
                path.to_str().unwrap(),
                "--start",
                start,
                "--end",
                end,
            ])
            .output()
            .expect("slice runs");
        assert!(out.status.success(), "{out:?}");
        shard_paths.push(path);
    }

    for workers in ["1", "4"] {
        // The golden must be exactly what a single node answers…
        let single = spawn_serve(full_s, workers);
        assert_eq!(
            roundtrip(&single.addr, &specs),
            expected,
            "single node diverged from the golden at --workers {workers}"
        );
        shutdown(single);

        // …and exactly what the coordinator answers over two shards:
        // per-shard raw grids merged in shard order, optimized centrally.
        let shards: Vec<Server> = shard_paths
            .iter()
            .map(|p| spawn_serve(p.to_str().unwrap(), workers))
            .collect();
        let shard_list = shards
            .iter()
            .map(|s| s.addr.clone())
            .collect::<Vec<_>>()
            .join(",");
        let mut args = vec!["coord", "--shards", &shard_list];
        args.extend_from_slice(&FLAGS);
        let coord = spawn_listening(&args);
        assert_eq!(
            roundtrip(&coord.addr, &specs),
            expected,
            "coordinator diverged from the golden at --workers {workers}"
        );

        // Warm path: the first rectangle spec re-runs against the
        // post-append snapshot, whose answer the transcript already
        // pinned — served from the coordinator's merged-grid cache.
        let first_spec = specs.lines().next().unwrap();
        let rpcs_before = stat_field(&coord.addr, "shard_rpcs");
        let warm = roundtrip(&coord.addr, &format!("{first_spec}\n"));
        assert_eq!(
            warm,
            [expected[10]],
            "warm re-run must hit the pinned post-append answer"
        );
        assert_eq!(
            stat_field(&coord.addr, "shard_rpcs"),
            rpcs_before,
            "a warm rectangle query must not touch the shards"
        );

        // Coordinator shutdown drains both shards.
        shutdown(coord);
        for mut shard in shards {
            assert!(shard.child.wait().expect("shard exits").success());
        }
    }

    std::fs::remove_file(&full).unwrap();
    for path in shard_paths {
        std::fs::remove_file(path).unwrap();
    }
}

/// Pulls a numeric field out of the coordinator's stats reply.
fn stat_field(addr: &str, field: &str) -> u64 {
    let lines = roundtrip(addr, "{\"cmd\":\"stats\"}\n");
    let line = &lines[0];
    let needle = format!("\"{field}\":");
    let at = line
        .find(&needle)
        .unwrap_or_else(|| panic!("{field} missing in {line}"));
    line[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric stats field")
}
