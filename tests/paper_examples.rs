//! The paper's worked examples, encoded as executable tests.
//!
//! Each test cites the example it reproduces; together they pin the
//! semantics of Definitions 2.2-2.6 and the observations the paper
//! makes in passing.

use optrules::bucketing::{count_buckets, finest_cuts_for_integer_domain, CountSpec};
use optrules::prelude::*;

/// Example 2.3's observation: "although [1000, 5000] is a superset of
/// [2000, 4000], the confidence of the rule of the former range is
/// greater than that of the latter range". Construct buckets where
/// exactly that happens.
#[test]
fn example_2_3_superset_can_be_more_confident() {
    // Buckets over Balance: [1000,2000), [2000,4000), [4000,5000].
    // The outer buckets are hit-rich, the middle is hit-poor.
    let u = [100u64, 100, 100];
    let v = [95u64, 50, 95];
    let conf = |s: usize, t: usize| {
        v[s..=t].iter().sum::<u64>() as f64 / u[s..=t].iter().sum::<u64>() as f64
    };
    let inner = conf(1, 1); // [2000, 4000): 50 %
    let outer = conf(0, 2); // [1000, 5000]: 80 %
    assert!(outer > inner, "superset {outer} must exceed subset {inner}");

    // And the optimizers respect it: with θ = 65 % the optimized-support
    // range is the superset, not the subset.
    let best = optimize_support(&u, &v, Ratio::percent(65))
        .unwrap()
        .unwrap();
    assert_eq!((best.s, best.t), (0, 2));
}

/// Example 2.4: ages 0..=120 give 121 finest buckets; balances of
/// millions of customers would give millions — the case that motivates
/// approximate bucketing.
#[test]
fn example_2_4_age_finest_buckets() {
    let spec = finest_cuts_for_integer_domain(0, 120);
    assert_eq!(spec.bucket_count(), 121);
    // Every age maps to its own bucket.
    for age in 0..=120 {
        assert_eq!(spec.bucket_of(age as f64), age);
    }
}

/// Definition 2.6: `(Σ v_i)/(Σ u_i)` over consecutive buckets is the
/// rule's confidence and `(Σ u_i)/N` its support — checked through the
/// whole pipeline against direct per-tuple counting.
#[test]
fn definition_2_6_confidence_and_support_formulas() {
    let gen = PlantedRangeGenerator::new((0.3, 0.6), 0.75, 0.2);
    let rel = gen.to_relation(10_000, 77);
    let attr = rel.schema().numeric("A").unwrap();
    let c = rel.schema().boolean("C").unwrap();
    let spec = optrules::bucketing::BucketSpec::from_cuts(vec![0.25, 0.5, 0.75]);
    let counts = count_buckets(
        &rel,
        &spec,
        &CountSpec::simple(attr, Condition::BoolIs(c, true)),
    )
    .unwrap();

    // Range = buckets 1..=2, i.e. A ∈ (0.25, 0.75].
    let sup: u64 = counts.u[1..=2].iter().sum();
    let hits: u64 = counts.bool_v[0][1..=2].iter().sum();

    let (mut direct_sup, mut direct_hits) = (0u64, 0u64);
    for row in 0..rel.len() as usize {
        let a = rel.numeric_value(attr, row);
        if 0.25 < a && a <= 0.75 {
            direct_sup += 1;
            direct_hits += rel.bool_value(c, row) as u64;
        }
    }
    assert_eq!(sup, direct_sup);
    assert_eq!(hits, direct_hits);
}

/// Section 2.2 / Definition 2.4 dual structure: at the *same* threshold
/// pair, the optimized-support rule is at least as wide as the
/// optimized-confidence rule, and the optimized-confidence rule at
/// least as confident.
#[test]
fn definition_2_4_duality_on_planted_data() {
    let gen = PlantedRangeGenerator::new((0.2, 0.55), 0.8, 0.15);
    let rel = gen.to_relation(30_000, 5);
    let mut engine = Engine::with_config(
        rel,
        EngineConfig {
            buckets: 200,
            min_support: Ratio::percent(10),
            min_confidence: Ratio::percent(60),
            ..EngineConfig::default()
        },
    );
    let mined = engine.query("A").objective_is("C").run().unwrap();
    let sup = mined.optimized_support().unwrap();
    let conf = mined.optimized_confidence().unwrap();
    assert!(sup.support() >= conf.support() - 1e-9);
    assert!(conf.confidence() >= sup.confidence() - 1e-9);
    // Both satisfy their respective constraints.
    assert!(sup.confidence() >= 0.60);
    assert!(conf.support() >= 0.10 - 1e-9);
}

/// §2.3's counting strategies agree: hash-style direct counting over
/// finest buckets (small discrete domain) equals the generic binary
/// search assignment.
#[test]
fn section_2_3_finest_bucket_counting() {
    let schema = Schema::builder().numeric("Age").boolean("C").build();
    let mut rel = Relation::new(schema);
    let mut direct = vec![(0u64, 0u64); 121];
    for i in 0..5000u64 {
        let age = (i * 37 % 121) as f64;
        let c = i % 4 == 0;
        rel.push_row(&[age], &[c]).unwrap();
        let slot = &mut direct[age as usize];
        slot.0 += 1;
        slot.1 += c as u64;
    }
    let spec = finest_cuts_for_integer_domain(0, 120);
    let attr = rel.schema().numeric("Age").unwrap();
    let c = Condition::BoolIs(rel.schema().boolean("C").unwrap(), true);
    let counts = count_buckets(&rel, &spec, &CountSpec::simple(attr, c)).unwrap();
    for (bucket, &(du, dv)) in direct.iter().enumerate() {
        assert_eq!(counts.u[bucket], du, "u mismatch at age {bucket}");
        assert_eq!(counts.bool_v[0][bucket], dv, "v mismatch at age {bucket}");
    }
}
