//! Batch execution (`SharedEngine::run_batch`) against the sequential
//! path: identical `RuleSet`s at every thread count, exactly one
//! bucketization / counting scan per distinct plan node, and the
//! JSON response encoding pinned by golden bytes.

use optrules::core::json;
use optrules::prelude::*;

fn config() -> EngineConfig {
    EngineConfig {
        buckets: 60,
        seed: 7,
        min_support: Ratio::percent(10),
        min_confidence: Ratio::percent(60),
        ..EngineConfig::default()
    }
}

fn engine(rows: u64, seed: u64) -> SharedEngine<Relation> {
    SharedEngine::with_config(BankGenerator::default().to_relation(rows, seed), config())
}

/// A mixed workload: many specs sharing one bucketization, plus an
/// average query, a generalized query, per-spec overrides, and two
/// failing specs (unknown attribute, invalid threshold combination).
fn mixed_specs() -> Vec<QuerySpec> {
    let mut specs = Vec::new();
    for target in ["CardLoan", "AutoWithdraw", "OnlineBanking"] {
        specs.push(QuerySpec::boolean("Balance", target));
    }
    let mut support_only = QuerySpec::boolean("Balance", "CardLoan");
    support_only.task = Task::OptimizeSupport;
    specs.push(support_only);
    let mut avg = QuerySpec::average("CheckingAccount", "SavingAccount");
    avg.min_average = Some(Real(14_000.0));
    specs.push(avg);
    let mut given = QuerySpec::boolean("Balance", "CardLoan");
    given.given = vec![CondSpec::BoolIs {
        attr: "AutoWithdraw".into(),
        value: true,
    }];
    specs.push(given);
    let mut rebucketed = QuerySpec::boolean("Age", "CardLoan");
    rebucketed.buckets = Some(25);
    specs.push(rebucketed);
    specs.push(QuerySpec::boolean("NoSuchAttr", "CardLoan"));
    let mut bad_threshold = QuerySpec::average("Balance", "SavingAccount");
    bad_threshold.min_confidence = Some(Ratio::percent(90));
    specs.push(bad_threshold);
    specs
}

#[test]
fn run_batch_matches_sequential_at_every_thread_count() {
    let specs = mixed_specs();
    let sequential: Vec<Result<RuleSet, String>> = {
        let engine = engine(8_000, 23);
        specs
            .iter()
            .map(|s| engine.run_spec(s).map_err(|e| e.to_string()))
            .collect()
    };
    // Sanity: the workload exercises both success and failure paths.
    assert!(sequential.iter().filter(|r| r.is_ok()).count() >= 6);
    assert_eq!(sequential.iter().filter(|r| r.is_err()).count(), 2);
    for threads in [1, 2, 4, 8] {
        let engine = engine(8_000, 23);
        let batched: Vec<Result<RuleSet, String>> = engine
            .run_batch(&specs, threads)
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect();
        assert_eq!(batched, sequential, "threads={threads}");
    }
}

#[test]
fn shared_work_units_run_exactly_once() {
    // 8 specs over one (attr, buckets, samples, seed) bucketization,
    // all eligible for the shared all-Booleans scan: one bucket node,
    // one scan node, however many queries.
    let mut specs = Vec::new();
    for target in ["CardLoan", "AutoWithdraw", "OnlineBanking"] {
        specs.push(QuerySpec::boolean("Balance", target));
        let mut conf_only = QuerySpec::boolean("Balance", target);
        conf_only.task = Task::OptimizeConfidence;
        specs.push(conf_only);
    }
    let mut tighter = QuerySpec::boolean("Balance", "CardLoan");
    tighter.min_support = Some(Ratio::percent(20));
    specs.push(tighter);
    let mut looser = QuerySpec::boolean("Balance", "CardLoan");
    looser.min_confidence = Some(Ratio::percent(52));
    specs.push(looser);

    let engine = engine(6_000, 11);
    let plan = engine.plan_batch(&specs);
    assert_eq!(plan.queries(), 8);
    assert_eq!(plan.bucket_nodes(), 1, "one shared bucketization");
    assert_eq!(plan.scan_nodes(), 1, "one shared counting scan");
    assert_eq!(plan.resolution_errors(), 0);

    for threads in [1, 4] {
        let engine = self::engine(6_000, 11);
        let results = engine.run_batch(&specs, threads);
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = engine.stats();
        assert_eq!(stats.bucketizations, 1, "threads={threads}: {stats:?}");
        assert_eq!(stats.scans, 1, "threads={threads}: {stats:?}");
        // Every query was then assembled warm.
        assert_eq!(stats.scan_cache_hits, specs.len() as u64);
        assert_eq!(stats.hits() + stats.misses(), stats.lookups);
    }
}

#[test]
fn plan_counts_distinct_nodes() {
    // Bucket nodes: Balance@60, Balance@30, CheckingAccount@60.
    // Scan nodes: Balance@60 shared, Balance@30 shared, Balance@60
    // with a presumptive filter, CheckingAccount@60 average.
    let mut specs = vec![QuerySpec::boolean("Balance", "CardLoan")];
    specs.push(QuerySpec::boolean("Balance", "AutoWithdraw")); // same nodes
    let mut rebucketed = QuerySpec::boolean("Balance", "CardLoan");
    rebucketed.buckets = Some(30);
    specs.push(rebucketed); // new bucket node + new scan node
    let mut given = QuerySpec::boolean("Balance", "CardLoan");
    given.given = vec![CondSpec::BoolIs {
        attr: "AutoWithdraw".into(),
        value: true,
    }];
    specs.push(given); // same bucket node, new scan node
    specs.push(QuerySpec::average("CheckingAccount", "SavingAccount")); // new bucket + scan
    specs.push(QuerySpec::boolean("Missing", "CardLoan")); // resolution error

    let engine = engine(3_000, 5);
    let plan = engine.plan_batch(&specs);
    assert_eq!(plan.queries(), 6);
    assert_eq!(plan.bucket_nodes(), 3);
    assert_eq!(plan.scan_nodes(), 4);
    assert_eq!(plan.resolution_errors(), 1);

    engine.run_batch(&specs, 4);
    let stats = engine.stats();
    assert_eq!(stats.bucketizations, 3);
    assert_eq!(stats.scans, 4);
}

#[test]
fn fluent_query_spec_and_run_spec_agree() {
    let engine = engine(5_000, 3);
    let schema = engine.relation().schema().clone();
    let auto = Condition::BoolIs(schema.boolean("AutoWithdraw").unwrap(), true);
    let fluent = engine
        .query("Balance")
        .given(auto.clone())
        .objective_is("CardLoan")
        .min_support_pct(5)
        .run()
        .unwrap();
    let spec = engine
        .query("Balance")
        .given(auto)
        .objective_is("CardLoan")
        .min_support_pct(5)
        .spec()
        .unwrap();
    assert_eq!(engine.run_spec(&spec).unwrap(), fluent);
    // And through JSON: encode → decode → run is still identical.
    let decoded = json::decode_spec(&json::encode_spec(&spec)).unwrap();
    assert_eq!(decoded, spec);
    assert_eq!(engine.run_spec(&decoded).unwrap(), fluent);
}

/// Golden bytes for the response encoding: field order, number
/// formatting, and escaping are part of the protocol — if this test
/// breaks, the protocol changed and consumers must be told.
#[test]
fn rule_set_encoding_golden() {
    let rules = RuleSet {
        attr_name: "Balance".into(),
        attr2: None,
        objective_desc: "(CardLoan = yes)".into(),
        rules: vec![
            Rule::Range(RangeRule {
                kind: RuleKind::OptimizedSupport,
                bucket_range: (3, 17),
                value_range: (3004.25, 7998.875),
                sup_count: 24_890,
                hits: 16_120,
                total_rows: 100_000,
            }),
            Rule::Average(AvgRule {
                kind: RuleKind::MaximumAverage,
                bucket_range: (0, 4),
                value_range: (1.5, 9.25),
                sup_count: 400,
                sum: 123_456.75,
                total_rows: 2_000,
            }),
        ],
        buckets_used: 50,
        total_rows: 100_000,
    };
    assert_eq!(
        json::encode_rule_set(&rules),
        r#"{"attr":"Balance","objective":"(CardLoan = yes)","buckets_used":50,"total_rows":100000,"rules":[{"kind":"optimized_support","buckets":[3,17],"values":[3004.25,7998.875],"count":24890,"hits":16120,"rows":100000},{"kind":"maximum_average","buckets":[0,4],"values":[1.5,9.25],"count":400,"sum":123456.75,"rows":2000}]}"#
    );

    let empty = RuleSet {
        attr_name: "A \"quoted\"".into(),
        attr2: None,
        objective_desc: "avg(B)".into(),
        rules: vec![],
        buckets_used: 0,
        total_rows: 0,
    };
    assert_eq!(
        json::encode_rule_set(&empty),
        r#"{"attr":"A \"quoted\"","objective":"avg(B)","buckets_used":0,"total_rows":0,"rules":[]}"#
    );
}

/// Golden bytes for the request encoding (same contract as above).
#[test]
fn query_spec_encoding_golden() {
    let mut spec = QuerySpec::boolean("Balance", "CardLoan");
    spec.min_support = Some(Ratio::percent(10));
    spec.buckets = Some(200);
    assert_eq!(
        json::encode_spec(&spec),
        r#"{"attr":"Balance","objective":{"bool":"CardLoan"},"min_support":[10,100],"buckets":200}"#
    );
    let mut avg = QuerySpec::average("CheckingAccount", "SavingAccount");
    avg.given = vec![CondSpec::NumInRange {
        attr: "Age".into(),
        lo: Real(18.0),
        hi: Real(65.5),
    }];
    avg.task = Task::OptimizeConfidence;
    avg.min_average = Some(Real(14_000.0));
    avg.scan_all_booleans = false;
    assert_eq!(
        json::encode_spec(&avg),
        r#"{"attr":"CheckingAccount","objective":{"average":"SavingAccount"},"given":[{"num":"Age","in":[18,65.5]}],"task":"confidence","min_average":14000,"scan_all_booleans":false}"#
    );
}

#[test]
fn mine_all_pairs_is_a_batch_now() {
    // The §1.3 sweep rides the batch planner: per numeric attribute one
    // bucketization and one shared scan, at any fan-out width.
    let engine = engine(5_000, 3);
    let sets = engine.mine_all_pairs(4).unwrap();
    assert_eq!(sets.len(), 12); // 4 numeric × 3 boolean
    let stats = engine.stats();
    assert_eq!(stats.bucketizations, 4);
    assert_eq!(stats.scans, 4);
    assert_eq!(stats.scan_cache_hits, 12);
}
