//! Integration tests for the Section 4.3 generalized rules and the
//! Section 5 average-operator ranges.

use optrules::bucketing::{count_buckets, equi_depth_cuts, CountSpec, EquiDepthConfig};
use optrules::core::average::{
    maximum_average_range, maximum_average_range_naive, maximum_support_range,
    maximum_support_range_naive,
};
use optrules::prelude::*;

/// §4.3 semantics: mine_generalized must equal mining a *pre-filtered*
/// relation (tuples failing C1 dropped) with support measured against
/// the full row count.
#[test]
fn generalized_rule_equals_prefiltered_relation() {
    let gen = RetailGenerator::default();
    let rel = gen.to_relation(30_000, 3);
    let schema = rel.schema().clone();
    let amount = schema.numeric("Amount").unwrap();
    let pizza_attr = schema.boolean("Pizza").unwrap();
    let pizza = Condition::BoolIs(pizza_attr, true);
    let potato = Condition::BoolIs(schema.boolean("Potato").unwrap(), true);

    // Manual pre-filtering.
    let mut filtered = Relation::new(schema.clone());
    for row in 0..rel.len() as usize {
        if rel.bool_value(pizza_attr, row) {
            let nums: Vec<f64> = schema
                .numeric_attrs()
                .map(|a| rel.numeric_value(a, row))
                .collect();
            let bools: Vec<bool> = schema
                .boolean_attrs()
                .map(|a| rel.bool_value(a, row))
                .collect();
            filtered.push_row(&nums, &bools).unwrap();
        }
    }

    // Same buckets for both paths: derive them from the full relation.
    let spec = equi_depth_cuts(&rel, amount, &EquiDepthConfig::paper(64, 9)).unwrap();

    let what_gen = CountSpec {
        attr: amount,
        presumptive: pizza.clone(),
        bool_targets: vec![pizza.clone().and(potato.clone())],
        sum_targets: vec![],
    };
    let counts_gen = count_buckets(&rel, &spec, &what_gen).unwrap();

    let what_filtered = CountSpec::simple(amount, potato);
    let counts_filtered = count_buckets(&filtered, &spec, &what_filtered).unwrap();

    assert_eq!(counts_gen.u, counts_filtered.u);
    assert_eq!(counts_gen.bool_v[0], counts_filtered.bool_v[0]);
    // total_rows differs by design: support is measured against N.
    assert_eq!(counts_gen.total_rows, rel.len());
    assert_eq!(counts_filtered.total_rows, filtered.len());
}

/// §5 fast algorithms equal their exhaustive references on bucketized
/// bank data.
#[test]
fn average_ranges_match_naive_on_bank_data() {
    let rel = BankGenerator::default().to_relation(20_000, 7);
    let checking = rel.schema().numeric("CheckingAccount").unwrap();
    let saving = rel.schema().numeric("SavingAccount").unwrap();
    let spec = equi_depth_cuts(&rel, checking, &EquiDepthConfig::paper(128, 3)).unwrap();
    let counts = count_buckets(&rel, &spec, &CountSpec::averaging(checking, saving)).unwrap();
    let (_, cc) = counts.compact();

    for w in [100u64, 2_000, 10_000] {
        let fast = maximum_average_range(&cc.u, &cc.sums[0], w).unwrap();
        let naive = maximum_average_range_naive(&cc.u, &cc.sums[0], w).unwrap();
        assert_eq!(
            fast.map(|r| (r.s, r.t)),
            naive.map(|r| (r.s, r.t)),
            "max-average mismatch at W={w}"
        );
    }
    for theta in [4_000.0, 8_000.0, 14_000.0, 20_000.0] {
        let fast = maximum_support_range(&cc.u, &cc.sums[0], theta).unwrap();
        let naive = maximum_support_range_naive(&cc.u, &cc.sums[0], theta).unwrap();
        assert_eq!(
            fast.map(|r| (r.s, r.t, r.sup_count)),
            naive.map(|r| (r.s, r.t, r.sup_count)),
            "max-support mismatch at θ={theta}"
        );
    }
}

/// §5 trade-off: raising the support requirement can only lower the
/// best achievable average (monotone frontier).
#[test]
fn average_support_frontier_is_monotone() {
    let rel = BankGenerator::default().to_relation(25_000, 13);
    let checking = rel.schema().numeric("CheckingAccount").unwrap();
    let saving = rel.schema().numeric("SavingAccount").unwrap();
    let spec = equi_depth_cuts(&rel, checking, &EquiDepthConfig::paper(200, 3)).unwrap();
    let counts = count_buckets(&rel, &spec, &CountSpec::averaging(checking, saving)).unwrap();
    let (_, cc) = counts.compact();
    let n = counts.total_rows;

    let mut last_avg = f64::INFINITY;
    for pct in [2u64, 5, 10, 20, 40, 80] {
        let w = Ratio::percent(pct).min_count(n);
        let r = maximum_average_range(&cc.u, &cc.sums[0], w)
            .unwrap()
            .expect("feasible");
        assert!(
            r.average() <= last_avg + 1e-9,
            "average rose from {last_avg} to {} at support {pct}%",
            r.average()
        );
        assert!(r.sup_count >= w);
        last_avg = r.average();
    }
}

/// Generalized mining through the Miner on the planted retail pattern,
/// cross-checked against direct per-tuple counting of the mined range.
#[test]
fn mined_generalized_rule_counts_are_exact() {
    let gen = RetailGenerator::default();
    let rel = gen.to_relation(40_000, 5);
    let schema = rel.schema().clone();
    let amount = schema.numeric("Amount").unwrap();
    let pizza_attr = schema.boolean("Pizza").unwrap();
    let potato_attr = schema.boolean("Potato").unwrap();

    let mut engine = Engine::with_config(
        &rel,
        EngineConfig {
            buckets: 100,
            min_support: Ratio::percent(2),
            min_confidence: Ratio::percent(65),
            seed: 3,
            ..EngineConfig::default()
        },
    );
    let mined = engine
        .query_attr(amount)
        .given(Condition::BoolIs(pizza_attr, true))
        .objective(Condition::BoolIs(potato_attr, true))
        .run()
        .unwrap();

    let rule = mined
        .optimized_support()
        .expect("planted band is confident");
    // Recount the mined value range tuple by tuple.
    let (lo, hi) = rule.value_range;
    let (mut sup, mut hits) = (0u64, 0u64);
    for row in 0..rel.len() as usize {
        let a = rel.numeric_value(amount, row);
        if (lo..=hi).contains(&a) && rel.bool_value(pizza_attr, row) {
            sup += 1;
            hits += rel.bool_value(potato_attr, row) as u64;
        }
    }
    assert_eq!(sup, rule.sup_count, "support count mismatch");
    assert_eq!(hits, rule.hits, "hit count mismatch");
}
