#!/usr/bin/env bash
# Tiered bench harness: runs the criterion suite and distills the
# report lines into machine-readable JSON so perf is diffable across
# PRs (check the emitted file into the PR description, not the repo).
#
#   scripts/bench.sh [kick-tires|full] [output.json]
#
# kick-tires (default) runs the four benches that gate the hot paths
# touched most often — the engine cache, the live append path, the
# sharded scatter-gather coordinator, and the §1.4 rectangle grid —
# in a couple of minutes; full runs the entire suite.
#
# Every tier also runs serve_throughput twice — once with metrics
# recording on (the always-on default) and once with
# OPTRULES_METRICS=off — and emits the per-bench deltas under
# "metrics_overhead", so the observability tax on warm serving stays a
# number, not a guess (the budget is 5%).
set -euo pipefail
cd "$(dirname "$0")/.."

tier="${1:-kick-tires}"
out="${2:-BENCH_PR10.json}"

case "$tier" in
  kick-tires)
    benches=(engine_cache append_throughput coord_scatter_gather region2d)
    ;;
  full)
    benches=(miner confidence support hull bucketing sample_size parallel
             engine_cache concurrent_engine batch_plan serve_throughput
             append_throughput durability coord_scatter_gather region2d)
    ;;
  *)
    echo "usage: $0 [kick-tires|full] [output.json]" >&2
    exit 2
    ;;
esac

git_rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
raw="$(mktemp)"
raw_on="$(mktemp)"
raw_off="$(mktemp)"
trap 'rm -f "$raw" "$raw_on" "$raw_off"' EXIT

for bench in "${benches[@]}"; do
  echo "== $bench" >&2
  cargo bench -q -p optrules-bench --bench "$bench" 2>&1 | tee -a "$raw" >&2
done

echo "== serve_throughput (metrics on)" >&2
cargo bench -q -p optrules-bench --bench serve_throughput 2>&1 | tee "$raw_on" >&2
echo "== serve_throughput (metrics off)" >&2
OPTRULES_METRICS=off cargo bench -q -p optrules-bench --bench serve_throughput 2>&1 \
  | tee "$raw_off" >&2

# Report lines look like:
#   group/name/param   time:   242.2201 µs  (3312 iters)  thrpt: ...
extract() {
  awk '
    / time: / {
      name = $1
      for (i = 1; i <= NF; i++) if ($i == "time:") { t = $(i + 1); unit = $(i + 2) }
      ns = t + 0
      if (unit ~ /^ms/)                     ns *= 1e6
      else if (unit ~ /^µs/ || unit ~ /^us/) ns *= 1e3
      else if (unit ~ /^ns/)                 ns *= 1
      else if (unit ~ /^s/)                  ns *= 1e9
      printf "%s %.1f\n", name, ns
    }
  ' "$1"
}

{
  printf '{\n  "tier": "%s",\n  "git": "%s",\n  "results": [\n' "$tier" "$git_rev"
  extract "$raw" | awk '
    { printf "%s    {\"name\": \"%s\", \"time_ns\": %s}", sep, $1, $2; sep = ",\n" }
    END { if (sep != "") printf "\n" }
  '
  printf '  ],\n  "metrics_overhead": [\n'
  # Both runs execute the same benches in the same order, so a
  # positional join is exact.
  paste <(extract "$raw_on") <(extract "$raw_off") | awk '
    {
      pct = ($4 > 0) ? 100 * ($2 - $4) / $4 : 0
      printf "%s    {\"name\": \"%s\", \"metrics_on_ns\": %s, \"metrics_off_ns\": %s, \"overhead_pct\": %.2f}", \
        sep, $1, $2, $4, pct
      sep = ",\n"
    }
    END { if (sep != "") printf "\n" }
  '
  printf '  ]\n}\n'
} > "$out"
echo "wrote $out ($(grep -c time_ns "$out") results)" >&2
