#!/usr/bin/env bash
# Tiered bench harness: runs the criterion suite and distills the
# report lines into machine-readable JSON so perf is diffable across
# PRs (check the emitted file into the PR description, not the repo).
#
#   scripts/bench.sh [kick-tires|full] [output.json]
#
# kick-tires (default) runs the three benches that gate the hot paths
# touched most often — the engine cache, the live append path, and the
# sharded scatter-gather coordinator — in a couple of minutes; full
# runs the entire suite.
set -euo pipefail
cd "$(dirname "$0")/.."

tier="${1:-kick-tires}"
out="${2:-BENCH_PR8.json}"

case "$tier" in
  kick-tires)
    benches=(engine_cache append_throughput coord_scatter_gather)
    ;;
  full)
    benches=(miner confidence support hull bucketing sample_size parallel
             engine_cache concurrent_engine batch_plan serve_throughput
             append_throughput durability coord_scatter_gather)
    ;;
  *)
    echo "usage: $0 [kick-tires|full] [output.json]" >&2
    exit 2
    ;;
esac

git_rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

for bench in "${benches[@]}"; do
  echo "== $bench" >&2
  cargo bench -q -p optrules-bench --bench "$bench" 2>&1 | tee -a "$raw" >&2
done

# Report lines look like:
#   group/name/param   time:   242.2201 µs  (3312 iters)  thrpt: ...
awk -v tier="$tier" -v rev="$git_rev" '
  / time: / {
    name = $1
    for (i = 1; i <= NF; i++) if ($i == "time:") { t = $(i + 1); unit = $(i + 2) }
    ns = t + 0
    if (unit ~ /^ms/)                     ns *= 1e6
    else if (unit ~ /^µs/ || unit ~ /^us/) ns *= 1e3
    else if (unit ~ /^ns/)                 ns *= 1
    else if (unit ~ /^s/)                  ns *= 1e9
    results[++n] = sprintf("    {\"name\": \"%s\", \"time_ns\": %.1f}", name, ns)
  }
  END {
    printf "{\n  \"tier\": \"%s\",\n  \"git\": \"%s\",\n  \"results\": [\n", tier, rev
    for (i = 1; i <= n; i++) printf "%s%s\n", results[i], (i < n ? "," : "")
    printf "  ]\n}\n"
  }
' "$raw" > "$out"
echo "wrote $out ($(grep -c time_ns "$out") results)" >&2
