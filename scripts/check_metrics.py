#!/usr/bin/env python3
"""Validate a `{"cmd":"metrics"}` response document read from stdin.

Structural checks always run: the line must parse as JSON with an
`"ok"` envelope, and every histogram object in the document must
satisfy `p50 <= p90 <= p99 <= max` with bucket counts summing to its
`count` (the invariants the fixed log-bucket layout guarantees).

Exact-count assertions ride `--expect dotted.path=N`, e.g.

    check_metrics.py --expect engine.optimize.count=12
    check_metrics.py --expect coord.shards[1].append.count=1

Paths are resolved inside the `"ok"` payload; `[i]` indexes arrays.
Exits non-zero (with the offending path) on any violation.
"""

import json
import re
import sys

HISTOGRAM_KEYS = {"count", "sum_ns", "max_ns", "p50_ns", "p90_ns", "p99_ns", "buckets"}


def histograms(value, path=""):
    """Yields (dotted-path, histogram-dict) for every histogram shape."""
    if isinstance(value, dict):
        if HISTOGRAM_KEYS <= set(value):
            yield path, value
        for key, nested in value.items():
            yield from histograms(nested, f"{path}.{key}" if path else key)
    elif isinstance(value, list):
        for i, nested in enumerate(value):
            yield from histograms(nested, f"{path}[{i}]")


def lookup(value, path):
    """Resolves `a.b[1].c` inside nested dicts/lists."""
    for step in re.findall(r"[^.\[\]]+|\[\d+\]", path):
        if step.startswith("["):
            value = value[int(step[1:-1])]
        else:
            value = value[step]
    return value


def main():
    expects = []
    args = sys.argv[1:]
    while args:
        if args[0] == "--expect" and len(args) >= 2:
            path, _, raw = args[1].partition("=")
            expects.append((path, int(raw)))
            args = args[2:]
        else:
            sys.exit(f"unknown argument {args[0]!r} (usage: --expect path=N ...)")

    line = sys.stdin.readline().strip()
    doc = json.loads(line)
    if "ok" not in doc:
        sys.exit(f"not an ok envelope: {line[:200]}")
    payload = doc["ok"]

    checked = 0
    for path, hist in histograms(payload):
        checked += 1
        p50, p90, p99 = hist["p50_ns"], hist["p90_ns"], hist["p99_ns"]
        if not p50 <= p90 <= p99 <= hist["max_ns"]:
            sys.exit(f"{path}: quantiles out of order: {hist}")
        total = sum(count for _, count in hist["buckets"])
        if total != hist["count"]:
            sys.exit(f"{path}: bucket total {total} != count {hist['count']}")
    if checked < 4:
        sys.exit(f"expected several histograms, found {checked}")

    for path, want in expects:
        got = lookup(payload, path)
        if got != want:
            sys.exit(f"{path}: expected {want}, got {got}")

    print(f"metrics ok: {checked} histograms, {len(expects)} exact counts")


if __name__ == "__main__":
    main()
