//! `optrules` — command-line rule mining over relation files.
//!
//! ```text
//! optrules gen <paper|bank|retail|planted> <path> [--rows N] [--seed S]
//! optrules info <path>
//! optrules mine <path> --attr A --target B [--buckets M] [--min-support P]
//!               [--min-confidence P] [--threads T] [--seed S] [--given C]
//!               [--format text|json]
//! optrules mine-all <path> [--buckets M] [--min-support P] [--min-confidence P]
//!               [--threads T] [--seed S] [--sort support|confidence|none]
//!               [--format text|json]
//! optrules avg <path> --attr A --target B [--buckets M] [--min-support P]
//!               [--min-avg X] [--threads T] [--seed S] [--format text|json]
//! optrules batch <path> [--buckets M] [--min-support P] [--min-confidence P]
//!               [--threads T] [--seed S] [--cache-mb N] [--cache-shards N]
//!               [--data-dir DIR] [--wal-sync always|batch|off] [--spill-rows N]
//!               (query specs + stats/append/flush frames as NDJSON on stdin)
//! optrules serve <path> [--addr HOST:PORT] [--workers N] [--max-inflight N]
//!               [--max-line-bytes N] [--write-timeout-secs N]
//!               [--cache-mb N] [--cache-shards N]
//!               [--data-dir DIR] [--wal-sync always|batch|off] [--spill-rows N]
//!               [--trace-log PATH|stderr] [--slow-query-ms N]
//!               [--buckets M] [--min-support P] [--min-confidence P]
//!               [--threads T] [--seed S]
//! optrules coord --shards H:P,H:P[,…] [--addr HOST:PORT] [--workers N]
//!               [--max-inflight N] [--max-line-bytes N] [--write-timeout-secs N]
//!               [--cache-mb N] [--cache-shards N]
//!               [--connect-timeout-ms N] [--rpc-timeout-ms N]
//!               [--retries N] [--retry-backoff-ms N]
//!               [--trace-log PATH|stderr] [--slow-query-ms N]
//!               [--buckets M] [--min-support P] [--min-confidence P]
//!               [--threads T] [--seed S]
//! optrules slice <src> <dst> [--start N] [--end N]
//! ```
//!
//! Relation files are the fixed-width format written by
//! `FileRelationWriter` (see `optrules::relation::file`). Percentages
//! are whole numbers (`--min-support 10` means 10 %). Mining runs on
//! the `Engine`/`SharedEngine` session API, so `mine-all` shares one
//! counting scan per numeric attribute across all Boolean targets.
//!
//! `--threads` means different things per subcommand: for `mine` and
//! `avg` it sets the counting-scan worker count (Algorithm 3.2); for
//! `mine-all` and `batch` it fans whole queries out across that many
//! scoped threads over one `SharedEngine` (each scan stays sequential,
//! so the output is byte-identical for every `--threads` value).
//!
//! `batch` is the request/response face of the engine: it reads one
//! JSON request frame per stdin line (the schema is documented in
//! `optrules::core::json`), plans each run of consecutive query specs
//! so shared bucketizations and counting scans run once each, and
//! writes one JSON response per line — `{"ok": <result>}` or
//! `{"error": "<message>"}` — in request order. `{"cmd":"append"}`
//! frames append rows (a new relation *generation*; later specs mine
//! it) and `{"cmd":"stats"}` reports engine counters plus the current
//! generation and row count. The engine flags set session defaults
//! that individual specs may override per query.
//!
//! `serve` keeps one warm `SharedEngine` behind a TCP listener and
//! speaks the same NDJSON protocol per connection, including the
//! `{"cmd":"stats"}` / `{"cmd":"shutdown"}` /
//! `{"cmd":"append","rows":…}` control frames (see
//! `optrules::core::server`; appends never block in-flight queries —
//! each batch pins its relation generation). It prints `listening on
//! <addr>` once bound (with `--addr host:0` the OS picks the port)
//! and exits 0 after a graceful shutdown.
//! `--cache-mb`/`--cache-shards` size the engine's bounded cache
//! without recompiling: `--cache-mb` is the total budget in MiB (`0`
//! disables caching — every query runs cold), `--cache-shards` the
//! lock granularity (≥ 1; the default is 32 MiB across 16 shards);
//! `--write-timeout-secs` (default 30) bounds how long a response
//! write may block on a client that stops reading.
//!
//! `coord` serves the same NDJSON protocol but owns no rows at all: it
//! plans every query centrally and scatters the data pass (sampling
//! fetches and counting scans) across the `optrules serve` backends
//! named by `--shards`, merging their partial bucket counts before the
//! cheap centralized optimization step. Responses are byte-identical
//! to a single-node server over the concatenated shard relations (see
//! `optrules::coord`). A dead shard fails only the requests that
//! needed it — those answer the structured
//! `{"error":{"shard":i,"message":…}}` envelope — and the coordinator
//! keeps serving, re-pinning the shard when it comes back. `slice`
//! cuts a row range of a relation file into a new file — the shard
//! files of a scatter-gather deployment are plain slices of the
//! original.
//!
//! `--data-dir DIR` makes the live relation *durable* for `batch` and
//! `serve` (see `optrules::relation::durable`): appended rows are
//! written to a write-ahead log in DIR before the ack, spilled into
//! file-backed segments once the tail passes `--spill-rows` (default
//! 65536), and replayed on the next start — acknowledged appends
//! survive a crash, and the server resumes at the generation it
//! stopped at. `--wal-sync` picks the ack guarantee: `always`
//! (default; fsync per append — survives power loss), `batch`
//! (OS page cache only — survives process crashes), `off` (no WAL —
//! only spilled segments and checkpoints survive). Without
//! `--data-dir` everything runs in memory and output is byte-identical
//! to previous releases.

use optrules::core::json;
use optrules::core::report::{render_rule_sets, sort_rule_sets, SortBy};
use optrules::core::server;
use optrules::obs::TraceSink;
use optrules::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  optrules gen <paper|bank|retail|planted> <path> [--rows N] [--seed S]
  optrules info <path>
  optrules mine <path> --attr A --target B [--buckets M] [--min-support P]
                [--min-confidence P] [--threads T] [--seed S] [--given C]
                [--format text|json]
  optrules mine-all <path> [--buckets M] [--min-support P] [--min-confidence P]
                [--threads T] [--seed S] [--sort support|confidence|none]
                [--format text|json]
  optrules avg <path> --attr A --target B [--buckets M] [--min-support P]
                [--min-avg X] [--threads T] [--seed S] [--format text|json]
  optrules batch <path> [--buckets M] [--min-support P] [--min-confidence P]
                [--threads T] [--seed S] [--cache-mb N] [--cache-shards N]
                [--data-dir DIR] [--wal-sync always|batch|off] [--spill-rows N]
                (query specs + stats/append/flush frames as NDJSON on stdin)
  optrules serve <path> [--addr HOST:PORT] [--workers N] [--max-inflight N]
                [--max-line-bytes N] [--write-timeout-secs N]
                [--cache-mb N] [--cache-shards N]
                [--data-dir DIR] [--wal-sync always|batch|off] [--spill-rows N]
                [--trace-log PATH|stderr] [--slow-query-ms N]
                [--buckets M] [--min-support P] [--min-confidence P]
                [--threads T] [--seed S]
                (NDJSON specs + stats/metrics/shutdown/flush/append
                 frames per TCP connection; --cache-mb sizes the shared
                 cache in MiB, 0 disables it; --cache-shards sets lock
                 granularity; --write-timeout-secs drops clients that
                 stop reading, both at least 1; --data-dir makes
                 appends durable: WAL + segment spill + crash
                 recovery; --trace-log emits one NDJSON span per
                 request phase, --slow-query-ms only spans at least
                 that long)
  optrules coord --shards H:P,H:P[,…] [--addr HOST:PORT] [--workers N]
                [--max-inflight N] [--max-line-bytes N] [--write-timeout-secs N]
                [--cache-mb N] [--cache-shards N]
                [--connect-timeout-ms N] [--rpc-timeout-ms N]
                [--retries N] [--retry-backoff-ms N]
                [--trace-log PATH|stderr] [--slow-query-ms N]
                [--buckets M] [--min-support P] [--min-confidence P]
                [--threads T] [--seed S]
                (scatter-gather front end over `optrules serve` shards:
                 plans and optimizes centrally, counts on the shards,
                 answers byte-identically to one server over the
                 concatenated rows; appends route to the last shard)
  optrules slice <src> <dst> [--start N] [--end N]
                (copies rows start..end of a relation file into a new
                 file — for cutting a relation into shard files)";

type CliResult = Result<(), String>;

/// Splits positional arguments from `--key value` flags. A trailing
/// `--key` with no value is a usage error, not an empty value.
fn parse(args: &[String]) -> Result<(Vec<&str>, HashMap<&str, &str>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let Some(value) = args.get(i + 1) else {
                return Err(format!("flag --{key} expects a value"));
            };
            // A following `--flag` is a missing value, not a value
            // (single-dash negatives like `-5` remain accepted).
            if value.starts_with("--") {
                return Err(format!("flag --{key} expects a value, got {value:?}"));
            }
            flags.insert(key, value.as_str());
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, flags))
}

/// Rejects flags the subcommand doesn't know, naming the offender.
fn reject_unknown(flags: &HashMap<&str, &str>, allowed: &[&str]) -> CliResult {
    let mut unknown: Vec<&str> = flags
        .keys()
        .filter(|key| !allowed.contains(*key))
        .copied()
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        None => Ok(()),
        Some(key) if allowed.is_empty() => Err(format!(
            "unknown flag --{key} (this subcommand takes no flags)"
        )),
        Some(key) => Err(format!(
            "unknown flag --{key} (expected one of: {})",
            allowed
                .iter()
                .map(|a| format!("--{a}"))
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

fn flag_num<T: std::str::FromStr>(
    flags: &HashMap<&str, &str>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {raw:?}")),
    }
}

const MINE_FLAGS: &[&str] = &[
    "attr",
    "target",
    "buckets",
    "min-support",
    "min-confidence",
    "threads",
    "seed",
    "given",
    "format",
];
const MINE_ALL_FLAGS: &[&str] = &[
    "buckets",
    "min-support",
    "min-confidence",
    "threads",
    "seed",
    "sort",
    "format",
];
const AVG_FLAGS: &[&str] = &[
    "attr",
    "target",
    "buckets",
    "min-support",
    "min-avg",
    "threads",
    "seed",
    "format",
];
const BATCH_FLAGS: &[&str] = &[
    "buckets",
    "min-support",
    "min-confidence",
    "threads",
    "seed",
    "cache-mb",
    "cache-shards",
    "data-dir",
    "wal-sync",
    "spill-rows",
];
const SERVE_FLAGS: &[&str] = &[
    "addr",
    "workers",
    "max-inflight",
    "max-line-bytes",
    "write-timeout-secs",
    "cache-mb",
    "cache-shards",
    "data-dir",
    "wal-sync",
    "spill-rows",
    "trace-log",
    "slow-query-ms",
    "buckets",
    "min-support",
    "min-confidence",
    "threads",
    "seed",
];
const COORD_FLAGS: &[&str] = &[
    "shards",
    "addr",
    "workers",
    "max-inflight",
    "max-line-bytes",
    "write-timeout-secs",
    "cache-mb",
    "cache-shards",
    "connect-timeout-ms",
    "rpc-timeout-ms",
    "retries",
    "retry-backoff-ms",
    "trace-log",
    "slow-query-ms",
    "buckets",
    "min-support",
    "min-confidence",
    "threads",
    "seed",
];

/// Output format shared by the mining subcommands: `text` (the default,
/// byte-identical to the pre-`--format` output) or `json` (the
/// response encoding of `optrules::core::json`, one result per line).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn parse_format(flags: &HashMap<&str, &str>) -> Result<Format, String> {
    match flags.get("format").copied() {
        None | Some("text") => Ok(Format::Text),
        Some("json") => Ok(Format::Json),
        Some(other) => Err(format!("--format expects text or json, got {other:?}")),
    }
}

fn run(args: &[String]) -> CliResult {
    let (pos, flags) = parse(args)?;
    match pos.as_slice() {
        ["gen", kind, path] => {
            reject_unknown(&flags, &["rows", "seed"])?;
            gen(kind, path, &flags)
        }
        ["info", path] => {
            reject_unknown(&flags, &[])?;
            info(path)
        }
        ["mine", path] => {
            reject_unknown(&flags, MINE_FLAGS)?;
            mine(path, &flags)
        }
        ["mine-all", path] => {
            reject_unknown(&flags, MINE_ALL_FLAGS)?;
            mine_all(path, &flags)
        }
        ["avg", path] => {
            reject_unknown(&flags, AVG_FLAGS)?;
            avg(path, &flags)
        }
        ["batch", path] => {
            reject_unknown(&flags, BATCH_FLAGS)?;
            batch(path, &flags)
        }
        ["serve", path] => {
            reject_unknown(&flags, SERVE_FLAGS)?;
            serve(path, &flags)
        }
        ["coord"] => {
            reject_unknown(&flags, COORD_FLAGS)?;
            coord(&flags)
        }
        ["slice", src, dst] => {
            reject_unknown(&flags, &["start", "end"])?;
            slice(src, dst, &flags)
        }
        [] => Err("missing command".into()),
        other => Err(format!("unrecognized command {other:?}")),
    }
}

fn gen(kind: &str, path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let rows: u64 = flag_num(flags, "rows", 100_000)?;
    let seed: u64 = flag_num(flags, "seed", 42)?;
    let rel = match kind {
        "paper" => UniformWorkload::paper()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "bank" => BankGenerator::default()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "retail" => RetailGenerator::default()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "planted" => PlantedRangeGenerator::table1()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown generator {other:?}")),
    };
    println!(
        "wrote {} rows ({} numeric + {} boolean attributes, {} bytes) to {path}",
        rel.len(),
        rel.schema().numeric_count(),
        rel.schema().boolean_count(),
        rel.data_bytes(),
    );
    Ok(())
}

fn info(path: &str) -> CliResult {
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    let schema = rel.schema();
    println!("rows     : {}", rel.len());
    println!(
        "data     : {} bytes ({} per tuple)",
        rel.data_bytes(),
        schema.record_size()
    );
    println!("numeric  : {}", schema.numeric_names().join(", "));
    println!("boolean  : {}", schema.boolean_names().join(", "));
    Ok(())
}

/// Parses `--given` of the form `Attr=yes|no` into a condition.
fn parse_given(schema: &Schema, raw: &str) -> Result<Condition, String> {
    let (name, value) = raw
        .split_once('=')
        .ok_or_else(|| format!("--given expects Attr=yes|no, got {raw:?}"))?;
    let attr = schema
        .boolean(name)
        .map_err(|_| format!("unknown boolean attribute {name:?}"))?;
    match value {
        "yes" => Ok(Condition::BoolIs(attr, true)),
        "no" => Ok(Condition::BoolIs(attr, false)),
        other => Err(format!("--given value must be yes or no, got {other:?}")),
    }
}

/// The `EngineConfig` flags shared by `mine`, `mine-all`, and `avg`.
/// `scan_threads` is the counting-scan worker count — `mine-all`
/// pins it to 1 because its `--threads` fans out whole queries
/// instead.
fn config_from_flags(
    flags: &HashMap<&str, &str>,
    scan_threads: usize,
) -> Result<EngineConfig, String> {
    Ok(EngineConfig {
        buckets: flag_num(flags, "buckets", 1000usize)?,
        min_support: Ratio::percent(flag_num(flags, "min-support", 10u64)?),
        min_confidence: Ratio::percent(flag_num(flags, "min-confidence", 50u64)?),
        threads: scan_threads,
        seed: flag_num(flags, "seed", 7u64)?,
        ..EngineConfig::default()
    })
}

/// The `--cache-mb` / `--cache-shards` operator flags, mapped onto
/// [`CacheConfig`]. `--cache-mb` is the total budget in MiB (converted
/// to cells of 8 bytes; `0` disables caching entirely) and
/// `--cache-shards` the lock granularity, which must be at least 1.
fn cache_from_flags(flags: &HashMap<&str, &str>) -> Result<CacheConfig, String> {
    let mut config = CacheConfig::default();
    if let Some(raw) = flags.get("cache-mb") {
        let mb: u64 = raw
            .parse()
            .map_err(|_| format!("--cache-mb expects a number of MiB, got {raw:?}"))?;
        // One cache cell is a u64/f64 ≈ 8 bytes.
        config.max_cost = mb.saturating_mul(1 << 20) / 8;
    }
    if let Some(raw) = flags.get("cache-shards") {
        let shards: usize = raw
            .parse()
            .map_err(|_| format!("--cache-shards expects a number, got {raw:?}"))?;
        if shards == 0 {
            return Err("--cache-shards must be at least 1".into());
        }
        config.shards = shards;
    }
    Ok(config)
}

/// The `--data-dir` / `--wal-sync` / `--spill-rows` durability flags.
/// Returns `None` when `--data-dir` is absent (pure in-memory mode);
/// the sync and spill flags are only meaningful with a data directory
/// and are rejected without one.
fn durability_from_flags(
    flags: &HashMap<&str, &str>,
) -> Result<Option<(String, DurabilityConfig)>, String> {
    let Some(dir) = flags.get("data-dir").copied() else {
        if flags.contains_key("wal-sync") {
            return Err("--wal-sync requires --data-dir".into());
        }
        if flags.contains_key("spill-rows") {
            return Err("--spill-rows requires --data-dir".into());
        }
        return Ok(None);
    };
    let sync = match flags.get("wal-sync").copied() {
        None | Some("always") => WalSync::Always,
        Some("batch") => WalSync::Batch,
        Some("off") => WalSync::Off,
        Some(other) => {
            return Err(format!(
                "--wal-sync expects always, batch, or off, got {other:?}"
            ))
        }
    };
    let spill_rows: u64 = flag_num(flags, "spill-rows", DurabilityConfig::default().spill_rows)?;
    if spill_rows == 0 {
        return Err("--spill-rows must be at least 1".into());
    }
    Ok(Some((
        dir.to_string(),
        DurabilityConfig { spill_rows, sync },
    )))
}

/// Opens the durable store and reports the recovery outcome on stderr
/// as one NDJSON event (stdout stays protocol-clean for
/// `batch`/`serve`, and stderr stays machine-parseable alongside
/// `--trace-log stderr` span lines).
fn recover_durable(
    path: &str,
    dir: &str,
    config: DurabilityConfig,
) -> Result<(Arc<DurableRelation>, u64), String> {
    let recovered = DurableRelation::open(path, dir, config)
        .map_err(|e| format!("opening data dir {dir}: {e}"))?;
    eprintln!(
        "{{\"event\":\"recover\",\"dir\":\"{}\",\"rows\":{},\"replayed_rows\":{},\"replayed_frames\":{},\"generation\":{}}}",
        optrules::obs::json_escape(dir),
        recovered.relation.len(),
        recovered.replayed_rows,
        recovered.replayed_frames,
        recovered.generation,
    );
    Ok((Arc::new(recovered.relation), recovered.generation))
}

fn engine_from_flags(
    path: &str,
    flags: &HashMap<&str, &str>,
) -> Result<Engine<FileRelation>, String> {
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    let scan_threads = flag_num(flags, "threads", 1usize)?;
    Ok(Engine::with_config(
        rel,
        config_from_flags(flags, scan_threads)?,
    ))
}

fn mine(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    // Validated before mining: a typo'd --format must not cost a scan.
    let format = parse_format(flags)?;
    let mut engine = engine_from_flags(path, flags)?;
    let schema = engine.relation().schema().clone();
    let attr = *flags.get("attr").ok_or("--attr is required")?;
    let target = *flags.get("target").ok_or("--target is required")?;
    let presumptive = match flags.get("given") {
        Some(raw) => parse_given(&schema, raw)?,
        None => Condition::True,
    };
    let rules = engine
        .query(attr)
        .given(presumptive)
        .objective_is(target)
        // One query per process: no point counting the other booleans.
        .scan_all_booleans(false)
        .run()
        .map_err(|e| e.to_string())?;
    match format {
        Format::Text => print_rules(&rules),
        Format::Json => println!("{}", json::encode_rule_set(&rules)),
    }
    Ok(())
}

fn mine_all(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    // Validated before mining: a typo'd --format must not cost a sweep.
    let format = parse_format(flags)?;
    let sort = match flags.get("sort").copied() {
        Some("confidence") => SortBy::Confidence,
        Some("none") => SortBy::Unsorted,
        Some("support") | None => SortBy::Support,
        Some(other) => {
            return Err(format!(
                "--sort expects support, confidence, or none, got {other:?}"
            ))
        }
    };
    let threads: usize = flag_num(flags, "threads", 1)?;
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    // Here `--threads` fans *queries* out, not one scan: each worker
    // runs whole pairs with a sequential counting scan, so results —
    // and, after the deterministic numeric-major reassembly plus the
    // stable sort below, the printed order — are identical for every
    // thread count.
    let engine = SharedEngine::with_config(rel, config_from_flags(flags, 1)?);
    let sets = engine.mine_all_pairs(threads).map_err(|e| e.to_string())?;
    match format {
        Format::Text => {
            print!("{}", render_rule_sets(&sets, sort));
            println!("{} attribute pairs mined", sets.len());
        }
        // JSON emits *every* pair (no below-threshold summarizing), in
        // the same --sort order as the table.
        Format::Json => {
            for set in sort_rule_sets(&sets, sort) {
                println!("{}", json::encode_rule_set(set));
            }
        }
    }
    Ok(())
}

fn avg(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    // Validated before mining: a typo'd --format must not cost a scan.
    let format = parse_format(flags)?;
    let mut engine = engine_from_flags(path, flags)?;
    let attr = *flags.get("attr").ok_or("--attr is required")?;
    let target = *flags.get("target").ok_or("--target is required")?;
    let min_avg: f64 = flag_num(flags, "min-avg", 0.0)?;
    let rules = engine
        .query(attr)
        .average_of(target)
        .min_average(min_avg)
        .run()
        .map_err(|e| e.to_string())?;
    if format == Format::Json {
        println!("{}", json::encode_rule_set(&rules));
        return Ok(());
    }
    let line = |r: &AvgRule| {
        format!(
            "{} in [{:.4}, {:.4}]  {} = {:.4}, support {:.2}%",
            rules.attr_name,
            r.value_range.0,
            r.value_range.1,
            rules.objective_desc,
            r.average(),
            100.0 * r.support(),
        )
    };
    match rules.max_average() {
        Some(r) => println!("max-average range : {}", line(r)),
        None => println!("max-average range : none (support threshold unreachable)"),
    }
    match rules.max_support_average() {
        Some(r) => println!("max-support range : {}", line(r)),
        None => println!("max-support range : none (no range clears the average threshold)"),
    }
    Ok(())
}

/// The `batch` subcommand: NDJSON request frames on stdin → one NDJSON
/// response per request, in request order. Consecutive query specs are
/// planned as one segment (`SharedEngine::run_batch`), so specs
/// sharing a bucketization or scan run it exactly once; control frames
/// (`{"cmd":"stats"}` and the live write `{"cmd":"append","rows":…}`)
/// split segments and apply in request order, so a spec after an
/// append mines the new relation generation. Malformed or failing
/// requests produce an `{"error": ...}` line without aborting the
/// rest; `{"cmd":"shutdown"}` is a server command and answers an
/// error here.
fn batch(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let threads: usize = flag_num(flags, "threads", 1)?;
    let cache = cache_from_flags(flags)?;
    let config = config_from_flags(flags, 1)?;
    match durability_from_flags(flags)? {
        // Durable mode: the WAL-backed relation replaces the plain
        // chunked wrapper; the final flush checkpoints whatever tail
        // the batch appended so the next start replays nothing.
        Some((dir, dconfig)) => {
            let (rel, generation) = recover_durable(path, &dir, dconfig)?;
            let engine = SharedEngine::from_arc_at(rel, generation, config, cache);
            batch_requests(&engine, threads)?;
            engine
                .flush()
                .map_err(|e| format!("final checkpoint: {e}"))?;
            Ok(())
        }
        None => {
            let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
            // The chunked wrapper gives appends O(k) generation steps;
            // the file-backed base is never copied. Like mine-all,
            // --threads fans whole queries out and every scan stays
            // sequential, so output is byte-identical at any width
            // (and at any cache sizing — caching is semantically
            // invisible).
            let engine = SharedEngine::with_cache(ChunkedRelation::new(rel), config, cache);
            batch_requests(&engine, threads)
        }
    }
}

/// The transport-independent half of `batch`: read NDJSON frames from
/// stdin, execute them in order, write NDJSON responses to stdout.
fn batch_requests<R>(engine: &SharedEngine<R>, threads: usize) -> CliResult
where
    R: RandomAccess + AppendRows + Durability + Send + Sync,
{
    let mut requests: Vec<json::Request> = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        requests.push(json::parse_request(&line));
    }

    // Execute in request order through the shared executor —
    // exactly the server's per-connection semantics (one code path,
    // tested byte-identical across both transports by the live
    // golden); only the shutdown answer differs, since batch mode has
    // no server to stop.
    let (responses, _shutdown_seen) = json::execute_requests(
        engine,
        requests,
        |specs| engine.run_batch(specs, threads),
        || {
            json::error_envelope(
                "\"shutdown\" stops `optrules serve`; batch mode has no server to stop",
            )
        },
        // Batch mode has no server: `{"cmd":"metrics"}` answers the
        // engine section only, and no gauges ride `{"cmd":"stats"}`.
        None,
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for response in responses {
        writeln!(out, "{}", response.encode()).map_err(|e| format!("writing stdout: {e}"))?;
    }
    Ok(())
}

/// The `serve` subcommand: bind a TCP listener and answer the NDJSON
/// protocol from one long-lived warm `SharedEngine` until a
/// `{"cmd":"shutdown"}` control frame arrives. Prints the bound
/// address first (so scripts can use `--addr host:0`), then blocks
/// until the graceful drain completes.
fn serve(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let addr = flags.get("addr").copied().unwrap_or("127.0.0.1:7878");
    let cache = cache_from_flags(flags)?;
    let engine_config = config_from_flags(flags, 1)?;
    let server_config = server_config_from_flags(flags)?;
    let trace = trace_from_flags(flags)?;
    match durability_from_flags(flags)? {
        // Durable mode: recover base + segments + WAL tail, resume at
        // the recovered generation; the server's shutdown drain
        // checkpoints the tail.
        Some((dir, dconfig)) => {
            let (rel, generation) = recover_durable(path, &dir, dconfig)?;
            let engine = Arc::new(SharedEngine::from_arc_at(
                rel,
                generation,
                engine_config,
                cache,
            ));
            run_server(engine, addr, server_config, trace)
        }
        None => {
            let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
            // Chunked over the file-backed base: `{"cmd":"append"}`
            // frames produce O(k) relation generations without copying
            // the file data.
            let engine = Arc::new(SharedEngine::with_cache(
                ChunkedRelation::new(rel),
                engine_config,
                cache,
            ));
            run_server(engine, addr, server_config, trace)
        }
    }
}

/// Binds, announces, and blocks on the server until a graceful
/// shutdown drains (which checkpoints a durable engine).
fn run_server<R>(
    engine: Arc<SharedEngine<R>>,
    addr: &str,
    config: ServerConfig,
    trace: Option<Arc<TraceSink>>,
) -> CliResult
where
    R: RandomAccess + AppendRows + Durability + Send + Sync + 'static,
{
    let handle = server::serve_traced(engine, addr, config, trace)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    // Parsed by scripts and tests; stdout is line-buffered, so this is
    // visible before the first connection.
    println!("listening on {}", handle.addr());
    handle.join();
    println!("server stopped");
    Ok(())
}

/// Builds the span sink behind `--trace-log PATH|stderr`. The
/// `--slow-query-ms N` threshold drops spans shorter than N
/// milliseconds (default 0: log everything); it is meaningless
/// without a destination, so alone it is a usage error.
fn trace_from_flags(flags: &HashMap<&str, &str>) -> Result<Option<Arc<TraceSink>>, String> {
    let slow_ms: u64 = flag_num(flags, "slow-query-ms", 0)?;
    let slow_ns = slow_ms.saturating_mul(1_000_000);
    match flags.get("trace-log").copied() {
        Some("stderr") => Ok(Some(Arc::new(TraceSink::stderr(slow_ns)))),
        Some(path) => Ok(Some(Arc::new(
            TraceSink::file(path, slow_ns).map_err(|e| format!("opening trace log {path}: {e}"))?,
        ))),
        None if flags.contains_key("slow-query-ms") => {
            Err("--slow-query-ms requires --trace-log (there is nowhere to log to)".into())
        }
        None => Ok(None),
    }
}

/// The TCP front-end flags shared by `serve` and `coord`.
fn server_config_from_flags(flags: &HashMap<&str, &str>) -> Result<ServerConfig, String> {
    let workers: usize = flag_num(flags, "workers", 4)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let max_inflight: usize = flag_num(flags, "max-inflight", workers)?;
    if max_inflight == 0 {
        return Err("--max-inflight must be at least 1".into());
    }
    let max_line_bytes: usize = flag_num(flags, "max-line-bytes", 1 << 20)?;
    if max_line_bytes == 0 {
        return Err("--max-line-bytes must be at least 1".into());
    }
    let write_timeout_secs: u64 = flag_num(flags, "write-timeout-secs", 30)?;
    if write_timeout_secs == 0 {
        return Err("--write-timeout-secs must be at least 1".into());
    }
    Ok(ServerConfig {
        workers,
        max_inflight_batches: max_inflight,
        max_line_bytes,
        batch_threads: flag_num(flags, "threads", 1)?,
        write_timeout: Some(std::time::Duration::from_secs(write_timeout_secs)),
        ..ServerConfig::default()
    })
}

/// The `coord` subcommand: a scatter-gather front end over a set of
/// `optrules serve` shards (see `optrules::coord`). It holds no rows —
/// it plans, caches, merges, and optimizes; the shards count. The
/// engine flags (`--buckets` etc.) set the same session defaults a
/// single-node server would, so answers stay byte-identical to one
/// `optrules serve` over the concatenated shard rows.
fn coord(flags: &HashMap<&str, &str>) -> CliResult {
    let shards_raw = *flags
        .get("shards")
        .ok_or("--shards is required (comma-separated host:port list)")?;
    let shard_addrs: Vec<String> = shards_raw
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shard_addrs.is_empty() {
        return Err("--shards expects at least one host:port".into());
    }
    let addr = flags.get("addr").copied().unwrap_or("127.0.0.1:7879");
    let net = CoordConfig {
        connect_timeout: std::time::Duration::from_millis(flag_num(
            flags,
            "connect-timeout-ms",
            2_000u64,
        )?),
        rpc_timeout: std::time::Duration::from_millis(flag_num(
            flags,
            "rpc-timeout-ms",
            30_000u64,
        )?),
        retries: flag_num(flags, "retries", 2u32)?,
        retry_backoff: std::time::Duration::from_millis(flag_num(
            flags,
            "retry-backoff-ms",
            50u64,
        )?),
    };
    let server_config = server_config_from_flags(flags)?;
    let coordinator = Coordinator::connect(
        &shard_addrs,
        config_from_flags(flags, 1)?,
        cache_from_flags(flags)?,
        net,
    )
    .map_err(|e| e.to_string())?
    .with_trace(trace_from_flags(flags)?);
    let handle = server::serve_service(Arc::new(coordinator), addr, server_config)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("listening on {}", handle.addr());
    handle.join();
    println!("server stopped");
    Ok(())
}

/// The `slice` subcommand: copies rows `start..end` of a relation file
/// into a new relation file with the same schema — how a deployment
/// cuts one relation into per-shard files whose concatenation is the
/// original.
fn slice(src: &str, dst: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let rel = FileRelation::open(src).map_err(|e| e.to_string())?;
    let rows = rel.len();
    let start: u64 = flag_num(flags, "start", 0)?;
    let end: u64 = flag_num(flags, "end", rows)?;
    if start > end || end > rows {
        return Err(format!(
            "--start/--end must satisfy start <= end <= {rows}, got {start}..{end}"
        ));
    }
    let mut writer = FileRelationWriter::create(dst, rel.schema().clone())
        .map_err(|e| format!("creating {dst}: {e}"))?;
    let mut write_err: Result<(), String> = Ok(());
    rel.for_each_row_in(start..end, &mut |_, numeric, boolean| {
        if write_err.is_ok() {
            if let Err(e) = writer.push_row(numeric, boolean) {
                write_err = Err(format!("writing {dst}: {e}"));
            }
        }
    })
    .map_err(|e| e.to_string())?;
    write_err?;
    let out = writer.finish().map_err(|e| format!("writing {dst}: {e}"))?;
    println!(
        "wrote {} rows ({start}..{end} of {src}) to {dst}",
        out.len()
    );
    Ok(())
}

fn print_rules(rules: &RuleSet) {
    match rules.optimized_support() {
        Some(rule) => println!(
            "optimized-support    {}",
            rule.describe(&rules.attr_name, &rules.objective_desc)
        ),
        None => println!(
            "optimized-support    {} => {}: no confident range",
            rules.attr_name, rules.objective_desc
        ),
    }
    match rules.optimized_confidence() {
        Some(rule) => println!(
            "optimized-confidence {}",
            rule.describe(&rules.attr_name, &rules.objective_desc)
        ),
        None => println!(
            "optimized-confidence {} => {}: no ample range",
            rules.attr_name, rules.objective_desc
        ),
    }
}
