//! `optrules` — command-line rule mining over relation files.
//!
//! ```text
//! optrules gen <paper|bank|retail|planted> <path> [--rows N] [--seed S]
//! optrules info <path>
//! optrules mine <path> --attr A --target B [--buckets M] [--min-support P]
//!               [--min-confidence P] [--threads T] [--given C]
//! optrules mine-all <path> [--buckets M] [--min-support P] [--min-confidence P]
//! optrules avg <path> --attr A --target B [--min-support P] [--min-avg X]
//! ```
//!
//! Relation files are the fixed-width format written by
//! `FileRelationWriter` (see `optrules::relation::file`). Percentages
//! are whole numbers (`--min-support 10` means 10 %).

use optrules::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  optrules gen <paper|bank|retail|planted> <path> [--rows N] [--seed S]
  optrules info <path>
  optrules mine <path> --attr A --target B [--buckets M] [--min-support P]
                [--min-confidence P] [--threads T] [--given C]
  optrules mine-all <path> [--buckets M] [--min-support P] [--min-confidence P]
  optrules avg <path> --attr A --target B [--min-support P] [--min-avg X]";

type CliResult = Result<(), String>;

/// Splits positional arguments from `--key value` flags.
fn parse(args: &[String]) -> (Vec<&str>, HashMap<&str, &str>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(key, args[i + 1].as_str());
                i += 2;
            } else {
                flags.insert(key, "");
                i += 1;
            }
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    (positional, flags)
}

fn flag_num<T: std::str::FromStr>(
    flags: &HashMap<&str, &str>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {raw:?}")),
    }
}

fn run(args: &[String]) -> CliResult {
    let (pos, flags) = parse(args);
    match pos.as_slice() {
        ["gen", kind, path] => gen(kind, path, &flags),
        ["info", path] => info(path),
        ["mine", path] => mine(path, &flags),
        ["mine-all", path] => mine_all(path, &flags),
        ["avg", path] => avg(path, &flags),
        [] => Err("missing command".into()),
        other => Err(format!("unrecognized command {other:?}")),
    }
}

fn gen(kind: &str, path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let rows: u64 = flag_num(flags, "rows", 100_000)?;
    let seed: u64 = flag_num(flags, "seed", 42)?;
    let rel = match kind {
        "paper" => UniformWorkload::paper()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "bank" => BankGenerator::default()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "retail" => RetailGenerator::default()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "planted" => PlantedRangeGenerator::table1()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown generator {other:?}")),
    };
    println!(
        "wrote {} rows ({} numeric + {} boolean attributes, {} bytes) to {path}",
        rel.len(),
        rel.schema().numeric_count(),
        rel.schema().boolean_count(),
        rel.data_bytes(),
    );
    Ok(())
}

fn info(path: &str) -> CliResult {
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    let schema = rel.schema();
    println!("rows     : {}", rel.len());
    println!(
        "data     : {} bytes ({} per tuple)",
        rel.data_bytes(),
        schema.record_size()
    );
    println!("numeric  : {}", schema.numeric_names().join(", "));
    println!("boolean  : {}", schema.boolean_names().join(", "));
    Ok(())
}

/// Parses `--given` of the form `Attr=yes|no` into a condition.
fn parse_given(schema: &Schema, raw: &str) -> Result<Condition, String> {
    let (name, value) = raw
        .split_once('=')
        .ok_or_else(|| format!("--given expects Attr=yes|no, got {raw:?}"))?;
    let attr = schema
        .boolean(name)
        .map_err(|_| format!("unknown boolean attribute {name:?}"))?;
    match value {
        "yes" => Ok(Condition::BoolIs(attr, true)),
        "no" => Ok(Condition::BoolIs(attr, false)),
        other => Err(format!("--given value must be yes or no, got {other:?}")),
    }
}

fn miner_from_flags(flags: &HashMap<&str, &str>) -> Result<Miner, String> {
    Ok(Miner::new(MinerConfig {
        buckets: flag_num(flags, "buckets", 1000usize)?,
        min_support: Ratio::percent(flag_num(flags, "min-support", 10u64)?),
        min_confidence: Ratio::percent(flag_num(flags, "min-confidence", 50u64)?),
        threads: flag_num(flags, "threads", 1usize)?,
        seed: flag_num(flags, "seed", 7u64)?,
        ..MinerConfig::default()
    }))
}

fn mine(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    let schema = rel.schema().clone();
    let attr_name = flags.get("attr").ok_or("--attr is required")?;
    let target_name = flags.get("target").ok_or("--target is required")?;
    let attr = schema
        .numeric(attr_name)
        .map_err(|_| format!("unknown numeric attribute {attr_name:?}"))?;
    let target = Condition::BoolIs(
        schema
            .boolean(target_name)
            .map_err(|_| format!("unknown boolean attribute {target_name:?}"))?,
        true,
    );
    let presumptive = match flags.get("given") {
        Some(raw) => parse_given(&schema, raw)?,
        None => Condition::True,
    };
    let miner = miner_from_flags(flags)?;
    let mined = miner
        .mine_generalized(&rel, attr, presumptive, target)
        .map_err(|e| e.to_string())?;
    print_pair(&mined);
    Ok(())
}

fn mine_all(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    use optrules::core::report::{render_pairs, SortBy};
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    let miner = miner_from_flags(flags)?;
    let pairs = miner.mine_all_pairs(&rel).map_err(|e| e.to_string())?;
    let sort = match flags.get("sort").copied() {
        Some("confidence") => SortBy::Confidence,
        Some("none") => SortBy::Unsorted,
        _ => SortBy::Support,
    };
    print!("{}", render_pairs(&pairs, sort));
    println!("{} attribute pairs mined", pairs.len());
    Ok(())
}

fn avg(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    let schema = rel.schema().clone();
    let attr_name = flags.get("attr").ok_or("--attr is required")?;
    let target_name = flags.get("target").ok_or("--target is required")?;
    let attr = schema
        .numeric(attr_name)
        .map_err(|_| format!("unknown numeric attribute {attr_name:?}"))?;
    let target = schema
        .numeric(target_name)
        .map_err(|_| format!("unknown numeric attribute {target_name:?}"))?;
    let min_avg: f64 = flag_num(flags, "min-avg", 0.0)?;
    let miner = miner_from_flags(flags)?;
    let mined = miner
        .mine_average(&rel, attr, target, min_avg)
        .map_err(|e| e.to_string())?;
    match &mined.max_average {
        Some((r, vals)) => println!(
            "max-average range : {} in [{:.4}, {:.4}]  avg({}) = {:.4}, support {:.2}%",
            mined.attr_name,
            vals.0,
            vals.1,
            mined.target_name,
            r.average(),
            100.0 * r.support(mined.total_rows),
        ),
        None => println!("max-average range : none (support threshold unreachable)"),
    }
    match &mined.max_support {
        Some((r, vals)) => println!(
            "max-support range : {} in [{:.4}, {:.4}]  avg({}) = {:.4}, support {:.2}%",
            mined.attr_name,
            vals.0,
            vals.1,
            mined.target_name,
            r.average(),
            100.0 * r.support(mined.total_rows),
        ),
        None => println!("max-support range : none (no range clears the average threshold)"),
    }
    Ok(())
}

fn print_pair(pair: &MinedPair) {
    match &pair.optimized_support {
        Some(rule) => println!(
            "optimized-support    {}",
            rule.describe(&pair.attr_name, &pair.objective_desc)
        ),
        None => println!(
            "optimized-support    {} => {}: no confident range",
            pair.attr_name, pair.objective_desc
        ),
    }
    match &pair.optimized_confidence {
        Some(rule) => println!(
            "optimized-confidence {}",
            rule.describe(&pair.attr_name, &pair.objective_desc)
        ),
        None => println!(
            "optimized-confidence {} => {}: no ample range",
            pair.attr_name, pair.objective_desc
        ),
    }
}
