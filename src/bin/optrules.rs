//! `optrules` — command-line rule mining over relation files.
//!
//! ```text
//! optrules gen <paper|bank|retail|planted> <path> [--rows N] [--seed S]
//! optrules info <path>
//! optrules mine <path> --attr A --target B [--buckets M] [--min-support P]
//!               [--min-confidence P] [--threads T] [--seed S] [--given C]
//! optrules mine-all <path> [--buckets M] [--min-support P] [--min-confidence P]
//!               [--threads T] [--seed S] [--sort support|confidence|none]
//! optrules avg <path> --attr A --target B [--buckets M] [--min-support P]
//!               [--min-avg X] [--threads T] [--seed S]
//! ```
//!
//! Relation files are the fixed-width format written by
//! `FileRelationWriter` (see `optrules::relation::file`). Percentages
//! are whole numbers (`--min-support 10` means 10 %). Mining runs on
//! the `Engine`/`SharedEngine` session API, so `mine-all` shares one
//! counting scan per numeric attribute across all Boolean targets.
//!
//! `--threads` means different things per subcommand: for `mine` and
//! `avg` it sets the counting-scan worker count (Algorithm 3.2); for
//! `mine-all` it fans the attribute pairs out across that many scoped
//! threads over one `SharedEngine` (each scan stays sequential, so the
//! output is byte-identical for every `--threads` value).

use optrules::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  optrules gen <paper|bank|retail|planted> <path> [--rows N] [--seed S]
  optrules info <path>
  optrules mine <path> --attr A --target B [--buckets M] [--min-support P]
                [--min-confidence P] [--threads T] [--seed S] [--given C]
  optrules mine-all <path> [--buckets M] [--min-support P] [--min-confidence P]
                [--threads T] [--seed S] [--sort support|confidence|none]
  optrules avg <path> --attr A --target B [--buckets M] [--min-support P]
                [--min-avg X] [--threads T] [--seed S]";

type CliResult = Result<(), String>;

/// Splits positional arguments from `--key value` flags. A trailing
/// `--key` with no value is a usage error, not an empty value.
fn parse(args: &[String]) -> Result<(Vec<&str>, HashMap<&str, &str>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let Some(value) = args.get(i + 1) else {
                return Err(format!("flag --{key} expects a value"));
            };
            // A following `--flag` is a missing value, not a value
            // (single-dash negatives like `-5` remain accepted).
            if value.starts_with("--") {
                return Err(format!("flag --{key} expects a value, got {value:?}"));
            }
            flags.insert(key, value.as_str());
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, flags))
}

/// Rejects flags the subcommand doesn't know, naming the offender.
fn reject_unknown(flags: &HashMap<&str, &str>, allowed: &[&str]) -> CliResult {
    let mut unknown: Vec<&str> = flags
        .keys()
        .filter(|key| !allowed.contains(*key))
        .copied()
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        None => Ok(()),
        Some(key) if allowed.is_empty() => Err(format!(
            "unknown flag --{key} (this subcommand takes no flags)"
        )),
        Some(key) => Err(format!(
            "unknown flag --{key} (expected one of: {})",
            allowed
                .iter()
                .map(|a| format!("--{a}"))
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

fn flag_num<T: std::str::FromStr>(
    flags: &HashMap<&str, &str>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {raw:?}")),
    }
}

const MINE_FLAGS: &[&str] = &[
    "attr",
    "target",
    "buckets",
    "min-support",
    "min-confidence",
    "threads",
    "seed",
    "given",
];
const MINE_ALL_FLAGS: &[&str] = &[
    "buckets",
    "min-support",
    "min-confidence",
    "threads",
    "seed",
    "sort",
];
const AVG_FLAGS: &[&str] = &[
    "attr",
    "target",
    "buckets",
    "min-support",
    "min-avg",
    "threads",
    "seed",
];

fn run(args: &[String]) -> CliResult {
    let (pos, flags) = parse(args)?;
    match pos.as_slice() {
        ["gen", kind, path] => {
            reject_unknown(&flags, &["rows", "seed"])?;
            gen(kind, path, &flags)
        }
        ["info", path] => {
            reject_unknown(&flags, &[])?;
            info(path)
        }
        ["mine", path] => {
            reject_unknown(&flags, MINE_FLAGS)?;
            mine(path, &flags)
        }
        ["mine-all", path] => {
            reject_unknown(&flags, MINE_ALL_FLAGS)?;
            mine_all(path, &flags)
        }
        ["avg", path] => {
            reject_unknown(&flags, AVG_FLAGS)?;
            avg(path, &flags)
        }
        [] => Err("missing command".into()),
        other => Err(format!("unrecognized command {other:?}")),
    }
}

fn gen(kind: &str, path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let rows: u64 = flag_num(flags, "rows", 100_000)?;
    let seed: u64 = flag_num(flags, "seed", 42)?;
    let rel = match kind {
        "paper" => UniformWorkload::paper()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "bank" => BankGenerator::default()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "retail" => RetailGenerator::default()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        "planted" => PlantedRangeGenerator::table1()
            .to_file(path, rows, seed)
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown generator {other:?}")),
    };
    println!(
        "wrote {} rows ({} numeric + {} boolean attributes, {} bytes) to {path}",
        rel.len(),
        rel.schema().numeric_count(),
        rel.schema().boolean_count(),
        rel.data_bytes(),
    );
    Ok(())
}

fn info(path: &str) -> CliResult {
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    let schema = rel.schema();
    println!("rows     : {}", rel.len());
    println!(
        "data     : {} bytes ({} per tuple)",
        rel.data_bytes(),
        schema.record_size()
    );
    println!("numeric  : {}", schema.numeric_names().join(", "));
    println!("boolean  : {}", schema.boolean_names().join(", "));
    Ok(())
}

/// Parses `--given` of the form `Attr=yes|no` into a condition.
fn parse_given(schema: &Schema, raw: &str) -> Result<Condition, String> {
    let (name, value) = raw
        .split_once('=')
        .ok_or_else(|| format!("--given expects Attr=yes|no, got {raw:?}"))?;
    let attr = schema
        .boolean(name)
        .map_err(|_| format!("unknown boolean attribute {name:?}"))?;
    match value {
        "yes" => Ok(Condition::BoolIs(attr, true)),
        "no" => Ok(Condition::BoolIs(attr, false)),
        other => Err(format!("--given value must be yes or no, got {other:?}")),
    }
}

/// The `EngineConfig` flags shared by `mine`, `mine-all`, and `avg`.
/// `scan_threads` is the counting-scan worker count — `mine-all`
/// pins it to 1 because its `--threads` fans out whole queries
/// instead.
fn config_from_flags(
    flags: &HashMap<&str, &str>,
    scan_threads: usize,
) -> Result<EngineConfig, String> {
    Ok(EngineConfig {
        buckets: flag_num(flags, "buckets", 1000usize)?,
        min_support: Ratio::percent(flag_num(flags, "min-support", 10u64)?),
        min_confidence: Ratio::percent(flag_num(flags, "min-confidence", 50u64)?),
        threads: scan_threads,
        seed: flag_num(flags, "seed", 7u64)?,
        ..EngineConfig::default()
    })
}

fn engine_from_flags(
    path: &str,
    flags: &HashMap<&str, &str>,
) -> Result<Engine<FileRelation>, String> {
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    let scan_threads = flag_num(flags, "threads", 1usize)?;
    Ok(Engine::with_config(
        rel,
        config_from_flags(flags, scan_threads)?,
    ))
}

fn mine(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let mut engine = engine_from_flags(path, flags)?;
    let schema = engine.relation().schema().clone();
    let attr = *flags.get("attr").ok_or("--attr is required")?;
    let target = *flags.get("target").ok_or("--target is required")?;
    let presumptive = match flags.get("given") {
        Some(raw) => parse_given(&schema, raw)?,
        None => Condition::True,
    };
    let rules = engine
        .query(attr)
        .given(presumptive)
        .objective_is(target)
        // One query per process: no point counting the other booleans.
        .scan_all_booleans(false)
        .run()
        .map_err(|e| e.to_string())?;
    print_rules(&rules);
    Ok(())
}

fn mine_all(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    use optrules::core::report::{render_rule_sets, SortBy};
    let sort = match flags.get("sort").copied() {
        Some("confidence") => SortBy::Confidence,
        Some("none") => SortBy::Unsorted,
        Some("support") | None => SortBy::Support,
        Some(other) => {
            return Err(format!(
                "--sort expects support, confidence, or none, got {other:?}"
            ))
        }
    };
    let threads: usize = flag_num(flags, "threads", 1)?;
    let rel = FileRelation::open(path).map_err(|e| e.to_string())?;
    // Here `--threads` fans *queries* out, not one scan: each worker
    // runs whole pairs with a sequential counting scan, so results —
    // and, after the deterministic numeric-major reassembly plus the
    // stable sort below, the printed order — are identical for every
    // thread count.
    let engine = SharedEngine::with_config(rel, config_from_flags(flags, 1)?);
    let sets = engine.mine_all_pairs(threads).map_err(|e| e.to_string())?;
    print!("{}", render_rule_sets(&sets, sort));
    println!("{} attribute pairs mined", sets.len());
    Ok(())
}

fn avg(path: &str, flags: &HashMap<&str, &str>) -> CliResult {
    let mut engine = engine_from_flags(path, flags)?;
    let attr = *flags.get("attr").ok_or("--attr is required")?;
    let target = *flags.get("target").ok_or("--target is required")?;
    let min_avg: f64 = flag_num(flags, "min-avg", 0.0)?;
    let rules = engine
        .query(attr)
        .average_of(target)
        .min_average(min_avg)
        .run()
        .map_err(|e| e.to_string())?;
    let line = |r: &AvgRule| {
        format!(
            "{} in [{:.4}, {:.4}]  {} = {:.4}, support {:.2}%",
            rules.attr_name,
            r.value_range.0,
            r.value_range.1,
            rules.objective_desc,
            r.average(),
            100.0 * r.support(),
        )
    };
    match rules.max_average() {
        Some(r) => println!("max-average range : {}", line(r)),
        None => println!("max-average range : none (support threshold unreachable)"),
    }
    match rules.max_support_average() {
        Some(r) => println!("max-support range : {}", line(r)),
        None => println!("max-support range : none (no range clears the average threshold)"),
    }
    Ok(())
}

fn print_rules(rules: &RuleSet) {
    match rules.optimized_support() {
        Some(rule) => println!(
            "optimized-support    {}",
            rule.describe(&rules.attr_name, &rules.objective_desc)
        ),
        None => println!(
            "optimized-support    {} => {}: no confident range",
            rules.attr_name, rules.objective_desc
        ),
    }
    match rules.optimized_confidence() {
        Some(rule) => println!(
            "optimized-confidence {}",
            rule.describe(&rules.attr_name, &rules.objective_desc)
        ),
        None => println!(
            "optimized-confidence {} => {}: no ample range",
            rules.attr_name, rules.objective_desc
        ),
    }
}
