//! # optrules
//!
//! A Rust implementation of **"Mining Optimized Association Rules for
//! Numeric Attributes"** (Fukuda, Morimoto, Morishita, Tokuyama —
//! PODS 1996; journal version JCSS 58(1), 1999).
//!
//! Given a relation with numeric and Boolean attributes, `optrules`
//! finds rules of the form `(A ∈ [v1, v2]) ⇒ C` with an *optimized*
//! range:
//!
//! * the **optimized-support rule** maximizes the range's support among
//!   ranges whose confidence clears a threshold;
//! * the **optimized-confidence rule** maximizes confidence among
//!   ranges whose support clears a threshold.
//!
//! Both run in O(M) time over M buckets; buckets are built *without
//! sorting the relation* via randomized almost-equi-depth bucketing
//! (sort a 40·M random sample, cut at its quantiles, then one counting
//! scan).
//!
//! See the repository `README.md` for the crate map, CLI usage, and
//! the paper citation.
//!
//! ## Quick start
//!
//! Mining is a session: an [`Engine`](core::engine::Engine) owns the
//! relation and caches bucketizations and counting scans, so repeated
//! queries — the paper's §1.3 interactive scenario — skip the O(N)
//! work. Queries are phrased with the fluent builder:
//!
//! ```
//! use optrules::prelude::*;
//!
//! // Build a small relation: balance + card-loan flag.
//! let schema = Schema::builder().numeric("Balance").boolean("CardLoan").build();
//! let mut rel = Relation::new(schema);
//! for i in 0..1000u64 {
//!     let balance = (i % 100) as f64 * 100.0;
//!     // Customers with balances in [3000, 7000] often take card loans.
//!     let loan = (3000.0..=7000.0).contains(&balance) && i % 3 != 0;
//!     rel.push_row(&[balance], &[loan]).unwrap();
//! }
//!
//! let mut engine = Engine::with_config(
//!     rel,
//!     EngineConfig { buckets: 50, ..EngineConfig::default() },
//! );
//!
//! // The optimized-support rule: widest band at ≥ 60 % confidence.
//! let rules = engine
//!     .query("Balance")
//!     .objective_is("CardLoan")
//!     .min_support_pct(10)
//!     .min_confidence_pct(60)
//!     .run()
//!     .unwrap();
//! let rule = rules.optimized_support().expect("confident range exists");
//! assert!(rule.confidence() >= 0.60);
//! println!("{}", rule.describe(&rules.attr_name, &rules.objective_desc));
//!
//! // A follow-up query on the same attribute reuses the cached scan:
//! let again = engine
//!     .query("Balance")
//!     .objective_is("CardLoan")
//!     .min_support_pct(20)
//!     .optimize_confidence()
//!     .unwrap();
//! assert!(again.optimized_confidence().is_some());
//! assert_eq!(engine.stats().scans, 1);
//! ```
//!
//! Generalized rules add a presumptive conjunct
//! (`.given(condition)`, §4.3); Section 5's average operator is
//! `.average_of("Target").min_average(θ)`; and
//! `engine.queries_for_all_pairs()` streams the full numeric × Boolean
//! sweep lazily.
//!
//! ## Crate map
//!
//! This facade re-exports the workspace crates:
//!
//! * [`relation`] — storage: schemas, in-memory and file-backed
//!   relations, synthetic data generators;
//! * [`stats`] — binomial tails behind the `S = 40·M` sampling rule;
//! * [`geometry`] — convex hull tree and tangent walk (Algorithms
//!   4.1/4.2);
//! * [`bucketing`] — randomized equi-depth bucketing (Algorithm 3.1),
//!   parallel counting (Algorithm 3.2), and the sort-based baselines;
//! * [`core`] — the optimizers, the average-operator ranges
//!   (Section 5), and the [`core::engine::Engine`] /
//!   [`core::shared::SharedEngine`] / [`core::query::Query`] session
//!   API with its bounded sharded cache ([`core::cache`]) — plus the
//!   deprecated [`core::miner::Miner`] one-shot shim. `SharedEngine`
//!   takes `&self` and is `Send + Sync` for parallel query traffic.
//!   The declarative layer on top — plain-data
//!   [`core::spec::QuerySpec`]s, the batch planner ([`core::plan`])
//!   behind `SharedEngine::run_batch`, and the JSON protocol
//!   ([`core::json`]) — makes the engine drivable by other processes
//!   (`optrules batch` on the CLI), and [`core::server`] serves that
//!   protocol over TCP from one long-lived warm engine
//!   (`optrules serve`). The relation is live: `{"cmd":"append"}`
//!   frames push rows into a new atomically-swapped generation
//!   ([`relation::ChunkedRelation`] keeps that O(k) amortized) while
//!   every in-flight query keeps its pinned snapshot — and optionally
//!   *durable*: [`relation::DurableRelation`] backs the live tail with
//!   a write-ahead log and spills it into file segments
//!   (`--data-dir` on the CLI), so acknowledged appends survive a
//!   crash and `optrules serve` resumes where it left off;
//! * [`coord`] — the scatter-gather coordinator (`optrules coord`): a
//!   thin front end that plans and optimizes centrally but delegates
//!   the data pass (sampling fetches, counting scans) to a set of
//!   `optrules serve` shards over the same NDJSON protocol, merging
//!   per-shard partial bucket counts — answers byte-identical to a
//!   single node over the concatenated rows, with structured
//!   `{"error":{"shard":i,…}}` envelopes when a backend fails;
//! * [`obs`] — dependency-free observability: lock-free log-bucketed
//!   latency [`obs::Histogram`]s (per-shard snapshots merge exactly,
//!   so a coordinator's view composes from its shards'), phase
//!   [`obs::Timer`]s, server gauges, and the NDJSON
//!   [`obs::TraceSink`] behind `--trace-log`/`--slow-query-ms`. Every
//!   layer above records into it; the `{"cmd":"metrics"}` control
//!   frame ([`core::json`]) renders the result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use optrules_bucketing as bucketing;
pub use optrules_coord as coord;
pub use optrules_core as core;
pub use optrules_geometry as geometry;
pub use optrules_obs as obs;
pub use optrules_relation as relation;
pub use optrules_stats as stats;

/// One-stop imports for typical mining sessions.
pub mod prelude {
    pub use crate::bucketing::{BucketSpec, CountSpec, EquiDepthConfig, SamplingMethod};
    pub use crate::coord::{CoordConfig, CoordError, Coordinator, ShardSet};
    pub use crate::core::average::{maximum_average_range, maximum_support_range};
    #[allow(deprecated)]
    pub use crate::core::Miner;
    pub use crate::core::{
        optimize_confidence, optimize_support, AppendOutcome, AvgRule, CacheConfig, CondSpec,
        Engine, EngineConfig, EngineStats, GridCounts, MinedAverage, MinedPair, MinerConfig,
        Objective, ObjectiveSpec, OptRange, Pinned, Plan, Query, QuerySpec, RangeRule, Ratio, Real,
        RectRule, Rule, RuleKind, RuleSet, ServerConfig, ServerHandle, ShardStats, SharedEngine,
        StatsSnapshot, Task,
    };
    pub use crate::relation::gen::{
        BankGenerator, DataGenerator, PlantedRangeGenerator, RetailGenerator, UniformWorkload,
    };
    pub use crate::relation::{
        AppendRows, BoolAttr, ChunkedRelation, Condition, Durability, DurabilityConfig,
        DurabilityStats, DurableRelation, FileRelation, FileRelationWriter, NumAttr, RandomAccess,
        Recovery, Relation, RowFrame, Schema, TupleScan, WalSync,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_session_pipeline() {
        let rel = PlantedRangeGenerator::table1().to_relation(2000, 1);
        let mut engine = Engine::with_config(
            rel,
            EngineConfig {
                buckets: 40,
                min_support: Ratio::percent(10),
                min_confidence: Ratio::percent(60),
                ..EngineConfig::default()
            },
        );
        let rules = engine.query("A").objective_is("C").run().unwrap();
        assert!(rules.optimized_confidence().is_some());
        assert_eq!(engine.stats().scans, 1);
    }
}
